//! The full device template: cores, compute units, memories, interconnect.

use core::fmt;

use ador_units::{Area, Bandwidth, Bytes, FlopRate, Frequency, Power};
use serde::{Deserialize, Serialize};

use crate::memory::DramSpec;
use crate::{MacTree, PerfProfile, ProcessNode, SystolicArray, VectorUnit};

/// A complete accelerator description in the ADOR template (paper Fig. 6a):
/// `cores` identical cores on a ring NoC, each with an optional systolic
/// array (×`sa_per_core`), an optional MAC-tree bank and a vector unit,
/// per-core local SRAM, shared global SRAM, DRAM modules and P2P links.
///
/// Baselines that we do not decompose into SA/MT fabrics (the A100's SMT
/// cores, the TSP's streaming fabric) carry a `peak_flops_override` and a
/// `die_area_override` from their datasheets instead.
///
/// Construct via [`Architecture::builder`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Architecture {
    /// Design name.
    pub name: String,
    /// Core count.
    pub cores: usize,
    /// Per-core systolic array, if present.
    pub sa: Option<SystolicArray>,
    /// Systolic-array instances per core (the Table III "Lane Count" row
    /// for the LLMCompass designs).
    pub sa_per_core: usize,
    /// Per-core MAC-tree bank, if present.
    pub mt: Option<MacTree>,
    /// Per-core vector unit.
    pub vu: VectorUnit,
    /// Local (per-core) activation SRAM.
    pub local_mem_per_core: Bytes,
    /// Shared global SRAM.
    pub global_mem: Bytes,
    /// DRAM subsystem.
    pub dram: DramSpec,
    /// Ring-NoC bisection bandwidth.
    pub noc_bandwidth: Bandwidth,
    /// Per-device P2P (inter-device) bandwidth.
    pub p2p_bandwidth: Bandwidth,
    /// Core clock.
    pub frequency: Frequency,
    /// Process node (for the area model).
    pub process: ProcessNode,
    /// Execution-efficiency profile.
    pub profile: PerfProfile,
    /// Datasheet peak FLOPS for fabrics we do not decompose.
    pub peak_flops_override: Option<FlopRate>,
    /// Datasheet die area for designs we do not run the cost model on.
    pub die_area_override: Option<Area>,
    /// Datasheet TDP, if known.
    pub tdp: Option<Power>,
}

impl Architecture {
    /// Starts building an architecture named `name`.
    pub fn builder(name: impl Into<String>) -> ArchitectureBuilder {
        ArchitectureBuilder::new(name)
    }

    /// Total systolic-array MAC cells on the device.
    pub fn sa_macs(&self) -> usize {
        self.sa
            .map_or(0, |sa| sa.macs() * self.sa_per_core * self.cores)
    }

    /// Total MAC-tree cells on the device.
    pub fn mt_macs(&self) -> usize {
        self.mt.map_or(0, |mt| mt.macs() * self.cores)
    }

    /// Peak FLOPS of the systolic arrays alone.
    pub fn sa_peak_flops(&self) -> FlopRate {
        FlopRate::new(self.sa_macs() as f64 * 2.0 * self.frequency.as_hz())
    }

    /// Peak FLOPS of the MAC trees alone.
    pub fn mt_peak_flops(&self) -> FlopRate {
        FlopRate::new(self.mt_macs() as f64 * 2.0 * self.frequency.as_hz())
    }

    /// Device peak FLOPS: the datasheet override if present, otherwise
    /// SA + MT.
    pub fn peak_flops(&self) -> FlopRate {
        self.peak_flops_override
            .unwrap_or_else(|| self.sa_peak_flops() + self.mt_peak_flops())
    }

    /// Total on-chip SRAM (local across cores + global).
    pub fn total_sram(&self) -> Bytes {
        self.local_mem_per_core * self.cores as u64 + self.global_mem
    }

    /// Whether `bytes` of weights + KV state fit in device memory.
    pub fn fits(&self, bytes: Bytes) -> bool {
        self.dram.fits(bytes)
    }

    /// The DRAM bandwidth slice naturally adjacent to one core on the ring
    /// (paper §IV-C: "each core fetches data from the nearest DRAM module").
    pub fn dram_bandwidth_per_core(&self) -> Bandwidth {
        self.dram.bandwidth / self.cores as f64
    }

    /// `true` if the device has both a systolic array and a MAC tree — the
    /// heterogeneous-dataflow case the paper's scheduler (Fig. 8) exploits.
    pub fn is_hda(&self) -> bool {
        self.sa.is_some() && self.mt.is_some()
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency: no compute fabric
    /// at all, zero cores, or a zero-bandwidth DRAM.
    pub fn validate(&self) -> Result<(), String> {
        if self.cores == 0 {
            return Err(format!("architecture '{}' has zero cores", self.name));
        }
        if self.sa.is_none() && self.mt.is_none() && self.peak_flops_override.is_none() {
            return Err(format!(
                "architecture '{}' has no compute fabric (no SA, no MT, no peak override)",
                self.name
            ));
        }
        if self.sa.is_some() && self.sa_per_core == 0 {
            return Err(format!(
                "architecture '{}' has an SA but sa_per_core = 0",
                self.name
            ));
        }
        if self.dram.bandwidth.is_zero() {
            return Err(format!(
                "architecture '{}' has zero DRAM bandwidth",
                self.name
            ));
        }
        Ok(())
    }
}

impl fmt::Display for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} cores", self.name, self.cores)?;
        if let Some(sa) = self.sa {
            write!(f, ", {sa}")?;
            if self.sa_per_core > 1 {
                write!(f, " x{}", self.sa_per_core)?;
            }
        }
        if let Some(mt) = self.mt {
            write!(f, ", {mt}")?;
        }
        write!(
            f,
            ", {} @ {} ({})",
            self.dram,
            self.frequency,
            self.peak_flops()
        )
    }
}

/// Builder for [`Architecture`] (C-BUILDER). Defaults: one SA per core, a
/// 64-lane vector unit, 1.5 GHz, 7 nm, the ADOR-template perf profile,
/// 256 GB/s NoC, 64 GB/s P2P, and 2 TB/s / 80 GiB HBM2e.
#[derive(Debug, Clone)]
pub struct ArchitectureBuilder {
    inner: Architecture,
}

impl ArchitectureBuilder {
    /// Creates a builder with the defaults above.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            inner: Architecture {
                name: name.into(),
                cores: 1,
                sa: None,
                sa_per_core: 1,
                mt: None,
                vu: VectorUnit::default(),
                local_mem_per_core: Bytes::from_kib(512),
                global_mem: Bytes::from_mib(16),
                dram: DramSpec::hbm2e(Bytes::from_gib(80), Bandwidth::from_tbps(2.0)),
                noc_bandwidth: Bandwidth::from_gbps(256.0),
                p2p_bandwidth: Bandwidth::from_gbps(64.0),
                frequency: Frequency::from_ghz(1.5),
                process: ProcessNode::N7,
                profile: PerfProfile::ador_template(),
                peak_flops_override: None,
                die_area_override: None,
                tdp: None,
            },
        }
    }

    /// Sets the core count.
    pub fn cores(mut self, cores: usize) -> Self {
        self.inner.cores = cores;
        self
    }

    /// Adds a per-core systolic array.
    pub fn systolic_array(mut self, sa: SystolicArray) -> Self {
        self.inner.sa = Some(sa);
        self
    }

    /// Sets the number of SA instances per core.
    pub fn sa_per_core(mut self, n: usize) -> Self {
        self.inner.sa_per_core = n;
        self
    }

    /// Adds a per-core MAC-tree bank.
    pub fn mac_tree(mut self, mt: MacTree) -> Self {
        self.inner.mt = Some(mt);
        self
    }

    /// Sets the per-core vector unit.
    pub fn vector_unit(mut self, vu: VectorUnit) -> Self {
        self.inner.vu = vu;
        self
    }

    /// Sets the per-core local SRAM.
    pub fn local_memory(mut self, bytes: Bytes) -> Self {
        self.inner.local_mem_per_core = bytes;
        self
    }

    /// Sets the shared global SRAM.
    pub fn global_memory(mut self, bytes: Bytes) -> Self {
        self.inner.global_mem = bytes;
        self
    }

    /// Sets the DRAM subsystem.
    pub fn dram(mut self, dram: DramSpec) -> Self {
        self.inner.dram = dram;
        self
    }

    /// Sets the ring-NoC bandwidth.
    pub fn noc_bandwidth(mut self, bw: Bandwidth) -> Self {
        self.inner.noc_bandwidth = bw;
        self
    }

    /// Sets the P2P bandwidth.
    pub fn p2p_bandwidth(mut self, bw: Bandwidth) -> Self {
        self.inner.p2p_bandwidth = bw;
        self
    }

    /// Sets the core clock.
    pub fn frequency(mut self, freq: Frequency) -> Self {
        self.inner.frequency = freq;
        self
    }

    /// Sets the process node.
    pub fn process(mut self, node: ProcessNode) -> Self {
        self.inner.process = node;
        self
    }

    /// Sets the execution profile.
    pub fn profile(mut self, profile: PerfProfile) -> Self {
        self.inner.profile = profile;
        self
    }

    /// Sets a datasheet peak-FLOPS override.
    pub fn peak_flops_override(mut self, rate: FlopRate) -> Self {
        self.inner.peak_flops_override = Some(rate);
        self
    }

    /// Sets a datasheet die-area override.
    pub fn die_area_override(mut self, area: Area) -> Self {
        self.inner.die_area_override = Some(area);
        self
    }

    /// Sets the TDP.
    pub fn tdp(mut self, tdp: Power) -> Self {
        self.inner.tdp = Some(tdp);
        self
    }

    /// Finishes construction.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`Architecture::validate`].
    pub fn build(self) -> Architecture {
        if let Err(e) = self.inner.validate() {
            panic!("invalid architecture: {e}");
        }
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Table III "ADOR Design" column.
    pub(crate) fn ador_design() -> Architecture {
        Architecture::builder("ADOR Design")
            .cores(32)
            .systolic_array(SystolicArray::square(64))
            .mac_tree(MacTree::new(16, 16))
            .local_memory(Bytes::from_kib(2048))
            .global_memory(Bytes::from_mib(16))
            .dram(DramSpec::hbm2e(
                Bytes::from_gib(80),
                Bandwidth::from_tbps(2.0),
            ))
            .p2p_bandwidth(Bandwidth::from_gbps(64.0))
            .frequency(Frequency::from_mhz(1500.0))
            .build()
    }

    #[test]
    fn table3_ador_peak_flops() {
        let a = ador_design();
        // Table III reports 417 TFLOPS.
        assert!(
            (a.peak_flops().as_tflops() - 417.0).abs() < 2.0,
            "{}",
            a.peak_flops()
        );
        assert!(a.is_hda());
    }

    #[test]
    fn table3_ador_sram_totals() {
        let a = ador_design();
        // 32 cores × 2 MiB local + 16 MiB global = 80 MiB.
        assert_eq!(a.total_sram(), Bytes::from_mib(80));
    }

    #[test]
    fn override_takes_precedence() {
        let a = Architecture::builder("A100-like")
            .cores(108)
            .peak_flops_override(FlopRate::from_tflops(312.0))
            .build();
        assert_eq!(a.peak_flops().as_tflops(), 312.0);
        assert!(!a.is_hda());
    }

    #[test]
    fn per_core_bandwidth_splits_evenly() {
        let a = ador_design();
        assert!((a.dram_bandwidth_per_core().as_gbps() - 62.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "no compute fabric")]
    fn fabric_required() {
        let _ = Architecture::builder("empty").cores(4).build();
    }

    #[test]
    fn display_mentions_units() {
        let s = format!("{}", ador_design());
        assert!(s.contains("SA 64x64"), "{s}");
        assert!(s.contains("MT 16x16"), "{s}");
    }

    #[test]
    fn validate_catches_zero_cores() {
        let mut a = ador_design();
        a.cores = 0;
        assert!(a.validate().is_err());
    }
}
