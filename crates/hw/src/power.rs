//! Power model: the vendor-side "power budget" input of Fig. 9.
//!
//! Component energies follow the usual 7 nm accelerator literature
//! (fractions of a pJ per fp16 MAC, ~1 pJ/byte of SRAM access, several
//! pJ/bit of DRAM I/O) and are calibrated so the Table III-class designs
//! land in the 300–500 W envelope the paper's comparisons imply (A100
//! 400 W, H100 700 W, TSP 300 W at their own utilizations).

use core::fmt;

use ador_units::{Bandwidth, Power, Utilization};
use serde::{Deserialize, Serialize};

use crate::{Architecture, ProcessNode};

/// Per-component energy/power constants (7 nm reference).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Joules per fp16 MAC on a systolic array (dense, short wires).
    pub sa_j_per_mac: f64,
    /// Joules per fp16 MAC on a MAC tree (tree wiring, wider accumulators).
    pub mt_j_per_mac: f64,
    /// Joules per vector-lane op.
    pub vu_j_per_op: f64,
    /// Joules per byte of SRAM traffic.
    pub sram_j_per_byte: f64,
    /// Joules per byte moved over the DRAM interface.
    pub dram_j_per_byte: f64,
    /// Joules per byte over P2P links.
    pub p2p_j_per_byte: f64,
    /// Static (leakage + always-on) watts per mm² of logic.
    pub static_w_per_mm2: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        Self {
            sa_j_per_mac: 0.55e-12,
            mt_j_per_mac: 0.80e-12,
            vu_j_per_op: 1.2e-12,
            // Effective per-byte energy after systolic neighbour-forwarding
            // amortizes most operand fetches.
            sram_j_per_byte: 0.15e-12,
            // HBM2e-class I/O: ~3.75 pJ/bit.
            dram_j_per_byte: 30.0e-12,
            // SerDes links: ~7.5 pJ/bit.
            p2p_j_per_byte: 60.0e-12,
            static_w_per_mm2: 0.08,
        }
    }
}

/// Itemized power draw at a given operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// Compute units (SA + MT + VU) at their utilization.
    pub compute: Power,
    /// SRAM traffic.
    pub sram: Power,
    /// DRAM interface traffic.
    pub dram: Power,
    /// P2P link traffic.
    pub p2p: Power,
    /// Leakage and always-on logic.
    pub static_power: Power,
}

impl PowerBreakdown {
    /// Total device power.
    pub fn total(&self) -> Power {
        self.compute + self.sram + self.dram + self.p2p + self.static_power
    }
}

impl fmt::Display for PowerBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "compute {} + SRAM {} + DRAM {} + P2P {} + static {} = {}",
            self.compute,
            self.sram,
            self.dram,
            self.p2p,
            self.static_power,
            self.total()
        )
    }
}

/// An operating point for the power estimate: how hard each resource is
/// being driven (take these from a
/// [`StepLatency`](../../ador_perf/struct.StepLatency.html)-level report or
/// assume worst case with [`OperatingPoint::peak`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Fraction of peak MACs busy.
    pub compute: Utilization,
    /// Achieved DRAM bandwidth fraction.
    pub dram: Utilization,
    /// Achieved P2P bandwidth fraction.
    pub p2p: Utilization,
}

impl OperatingPoint {
    /// Everything at 100 % — the TDP-style worst case.
    pub fn peak() -> Self {
        Self {
            compute: Utilization::FULL,
            dram: Utilization::FULL,
            p2p: Utilization::FULL,
        }
    }

    /// A decode-heavy point: memory saturated, compute trickling.
    pub fn decode_typical() -> Self {
        Self {
            compute: Utilization::new(0.15),
            dram: Utilization::new(0.9),
            p2p: Utilization::new(0.2),
        }
    }

    /// A prefill-heavy point: compute saturated.
    pub fn prefill_typical() -> Self {
        Self {
            compute: Utilization::new(0.85),
            dram: Utilization::new(0.4),
            p2p: Utilization::new(0.2),
        }
    }
}

impl PowerModel {
    /// Estimates the power of `arch` at `point`. Logic energy scales with
    /// the process node like area does (a first-order dynamic-power proxy);
    /// DRAM/P2P I/O energy does not.
    pub fn estimate(&self, arch: &Architecture, point: OperatingPoint) -> PowerBreakdown {
        let scale = arch.process.area_scale_vs_7nm();
        let f = arch.frequency.as_hz();

        // Compute: MACs/s at utilization × J/MAC.
        let sa_rate = arch.sa_macs() as f64 * f * point.compute.get();
        let mt_rate = arch.mt_macs() as f64 * f * point.compute.get();
        let vu_rate = (arch.vu.lanes() * arch.cores) as f64 * f * point.compute.get();
        let compute_w = (sa_rate * self.sa_j_per_mac
            + mt_rate * self.mt_j_per_mac
            + vu_rate * self.vu_j_per_op)
            * scale;

        // SRAM traffic: assume each busy MAC reads one operand byte pair.
        let sram_w = (sa_rate + mt_rate) * 2.0 * self.sram_j_per_byte * scale;

        // Memory interfaces.
        let dram_bw: Bandwidth = arch.dram.bandwidth.derated(point.dram);
        let dram_w = dram_bw.as_bytes_per_sec() * self.dram_j_per_byte;
        let p2p_bw: Bandwidth = arch.p2p_bandwidth.derated(point.p2p);
        let p2p_w = p2p_bw.as_bytes_per_sec() * self.p2p_j_per_byte;

        // Static: proportional to (logic) die area.
        let die = crate::AreaModel::default().estimate(arch).total().as_mm2();
        let static_w = die * self.static_w_per_mm2;

        PowerBreakdown {
            compute: Power::from_watts(compute_w),
            sram: Power::from_watts(sram_w),
            dram: Power::from_watts(dram_w),
            p2p: Power::from_watts(p2p_w),
            static_power: Power::from_watts(static_w),
        }
    }

    /// Whether `arch` fits inside `budget` at its worst-case point.
    pub fn fits_budget(&self, arch: &Architecture, budget: Power) -> bool {
        self.estimate(arch, OperatingPoint::peak()).total() <= budget
    }

    /// Rescales an estimate to another node (dynamic scales, I/O doesn't) —
    /// the Fig. 4-style normalization for power.
    pub fn estimate_at_node(
        &self,
        arch: &Architecture,
        point: OperatingPoint,
        node: ProcessNode,
    ) -> PowerBreakdown {
        let mut rebased = arch.clone();
        rebased.process = node;
        self.estimate(&rebased, point)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::DramSpec;
    use crate::{MacTree, SystolicArray};
    use ador_units::{Bandwidth, Bytes, Frequency};

    fn ador_design() -> Architecture {
        Architecture::builder("ADOR Design")
            .cores(32)
            .systolic_array(SystolicArray::square(64))
            .mac_tree(MacTree::new(16, 16))
            .local_memory(Bytes::from_kib(2048))
            .global_memory(Bytes::from_mib(16))
            .dram(DramSpec::hbm2e(
                Bytes::from_gib(80),
                Bandwidth::from_tbps(2.0),
            ))
            .p2p_bandwidth(Bandwidth::from_gbps(64.0))
            .frequency(Frequency::from_mhz(1500.0))
            .build()
    }

    #[test]
    fn peak_power_lands_in_accelerator_envelope() {
        let p = PowerModel::default().estimate(&ador_design(), OperatingPoint::peak());
        let w = p.total().as_watts();
        assert!((150.0..600.0).contains(&w), "{p}");
    }

    #[test]
    fn decode_burns_less_than_prefill() {
        // Decode idles the compute fabric; DRAM I/O dominates.
        let model = PowerModel::default();
        let arch = ador_design();
        let decode = model.estimate(&arch, OperatingPoint::decode_typical());
        let prefill = model.estimate(&arch, OperatingPoint::prefill_typical());
        assert!(decode.total() < prefill.total());
        assert!(decode.dram > decode.compute);
        assert!(prefill.compute > prefill.dram);
    }

    #[test]
    fn budget_check_is_monotone() {
        let model = PowerModel::default();
        let arch = ador_design();
        let peak = model.estimate(&arch, OperatingPoint::peak()).total();
        assert!(model.fits_budget(&arch, peak));
        assert!(!model.fits_budget(&arch, peak * 0.5));
    }

    #[test]
    fn denser_nodes_save_dynamic_power() {
        let model = PowerModel::default();
        let arch = ador_design();
        let at7 = model.estimate_at_node(&arch, OperatingPoint::prefill_typical(), ProcessNode::N7);
        let at4 = model.estimate_at_node(&arch, OperatingPoint::prefill_typical(), ProcessNode::N4);
        assert!(at4.compute < at7.compute);
        // I/O power is node-independent.
        assert_eq!(at4.dram, at7.dram);
    }

    #[test]
    fn breakdown_sums() {
        let p = PowerModel::default().estimate(&ador_design(), OperatingPoint::peak());
        let manual = p.compute.as_watts()
            + p.sram.as_watts()
            + p.dram.as_watts()
            + p.p2p.as_watts()
            + p.static_power.as_watts();
        assert!((p.total().as_watts() - manual).abs() < 1e-9);
    }

    #[test]
    fn mt_macs_cost_more_energy_than_sa_macs() {
        let m = PowerModel::default();
        assert!(m.mt_j_per_mac > m.sa_j_per_mac);
    }
}
