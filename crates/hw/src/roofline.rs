//! Roofline analysis: where a workload sits against an architecture's
//! compute and bandwidth ceilings.
//!
//! The prefill/decode dichotomy that motivates ADOR (paper §II) is exactly
//! a roofline story: prefill's arithmetic intensity sits far right of the
//! ridge (compute-bound), decode sits far left (bandwidth-bound), and
//! batching slides decode toward — but, because of per-request KV traffic,
//! never past — the ridge.

use core::fmt;

use ador_units::{Bandwidth, FlopRate};
use serde::{Deserialize, Serialize};

use crate::Architecture;

/// Which ceiling binds at a given arithmetic intensity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RooflineBound {
    /// Left of the ridge: DRAM bandwidth limits throughput.
    Bandwidth,
    /// Right of the ridge: peak compute limits throughput.
    Compute,
}

impl fmt::Display for RooflineBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RooflineBound::Bandwidth => f.write_str("bandwidth-bound"),
            RooflineBound::Compute => f.write_str("compute-bound"),
        }
    }
}

/// A classic two-ceiling roofline for one device.
///
/// # Examples
///
/// ```
/// use ador_hw::roofline::Roofline;
/// use ador_units::{Bandwidth, FlopRate};
///
/// let r = Roofline::new(FlopRate::from_tflops(417.0), Bandwidth::from_tbps(2.0));
/// // LLaMA3-8B decode at batch 1 has intensity ~1 flop/byte: deep in the
/// // bandwidth region.
/// assert_eq!(r.bound(1.0), ador_hw::roofline::RooflineBound::Bandwidth);
/// // Prefill at 1K tokens is hundreds of flops/byte: compute-bound.
/// assert_eq!(r.bound(500.0), ador_hw::roofline::RooflineBound::Compute);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Roofline {
    peak: FlopRate,
    bandwidth: Bandwidth,
}

impl Roofline {
    /// Builds a roofline from a compute peak and a memory ceiling.
    pub fn new(peak: FlopRate, bandwidth: Bandwidth) -> Self {
        Self { peak, bandwidth }
    }

    /// The roofline of an architecture's datasheet ceilings.
    pub fn of(arch: &Architecture) -> Self {
        Self::new(arch.peak_flops(), arch.dram.bandwidth)
    }

    /// The compute ceiling.
    pub fn peak(&self) -> FlopRate {
        self.peak
    }

    /// The bandwidth ceiling.
    pub fn bandwidth(&self) -> Bandwidth {
        self.bandwidth
    }

    /// The ridge point in FLOPs/byte: intensities below it are
    /// bandwidth-bound.
    pub fn ridge(&self) -> f64 {
        self.peak.get() / self.bandwidth.as_bytes_per_sec()
    }

    /// Attainable throughput at `intensity` FLOPs/byte.
    pub fn attainable(&self, intensity: f64) -> FlopRate {
        assert!(
            intensity.is_finite() && intensity >= 0.0,
            "intensity must be non-negative"
        );
        FlopRate::new((self.bandwidth.as_bytes_per_sec() * intensity).min(self.peak.get()))
    }

    /// Which ceiling binds at `intensity`.
    pub fn bound(&self, intensity: f64) -> RooflineBound {
        if intensity < self.ridge() {
            RooflineBound::Bandwidth
        } else {
            RooflineBound::Compute
        }
    }
}

impl fmt::Display for Roofline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "roofline: {} / {} (ridge {:.1} flop/B)",
            self.peak,
            self.bandwidth,
            self.ridge()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn table3() -> Roofline {
        Roofline::new(FlopRate::from_tflops(417.0), Bandwidth::from_tbps(2.0))
    }

    #[test]
    fn ridge_is_peak_over_bandwidth() {
        let r = table3();
        assert!((r.ridge() - 208.5).abs() < 0.5);
    }

    #[test]
    fn attainable_caps_at_peak() {
        let r = table3();
        assert_eq!(r.attainable(1e9), FlopRate::from_tflops(417.0));
        let low = r.attainable(1.0);
        assert!((low.as_tflops() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn decode_vs_prefill_classification() {
        let r = table3();
        // Decode at batch 1: ~2 flops/byte (weights streamed once per token).
        assert_eq!(r.bound(2.0), RooflineBound::Bandwidth);
        // Prefill: ~2·seq flops/byte.
        assert_eq!(r.bound(2048.0), RooflineBound::Compute);
    }

    proptest! {
        #[test]
        fn attainable_monotone(a in 0.0f64..1e6, b in 0.0f64..1e6) {
            let r = table3();
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            prop_assert!(r.attainable(lo) <= r.attainable(hi));
        }

        #[test]
        fn bound_consistent_with_attainable(x in 0.001f64..1e6) {
            let r = table3();
            match r.bound(x) {
                RooflineBound::Compute => prop_assert_eq!(r.attainable(x), r.peak()),
                RooflineBound::Bandwidth => prop_assert!(r.attainable(x) < r.peak()),
            }
        }
    }
}
