//! The silicon cost model (paper §VI-A: "we added the MAC tree information
//! to the LLMCompass cost model").
//!
//! Component constants are calibrated at 7 nm so that the model reproduces
//! every die area in Table III within ~0.5 % (LLMCompass-L 478 mm²,
//! LLMCompass-T 787 mm², ADOR 516 mm²); the calibration is worked through in
//! `DESIGN.md` §2.5. Logic and SRAM scale with the process node; DRAM and
//! P2P interfaces are analog-dominated PHYs and do not.

use core::fmt;

use ador_units::Area;
use serde::{Deserialize, Serialize};

use crate::{Architecture, ProcessNode};

/// Per-component area constants (all at the 7 nm reference node, except the
/// PHYs which are node-independent).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// mm² per systolic-array MAC cell (PE registers + pipeline included).
    pub sa_mac_mm2: f64,
    /// mm² per MAC-tree cell (tree wiring makes it less dense, §III-B:
    /// "MTs have lower compute unit density in the physical implementation").
    pub mt_mac_mm2: f64,
    /// mm² per vector-unit lane.
    pub vu_lane_mm2: f64,
    /// mm² per MiB of SRAM.
    pub sram_mm2_per_mib: f64,
    /// mm² per TB/s of DRAM interface bandwidth (PHY + controllers).
    pub dram_mm2_per_tbps: f64,
    /// mm² per GiB of DRAM capacity (channel/controller overhead).
    pub dram_mm2_per_gib: f64,
    /// mm² per GB/s of P2P link bandwidth.
    pub p2p_mm2_per_gbps: f64,
    /// Fixed system overhead: DMA engines, ring NoC, schedulers, misc I/O.
    pub system_mm2: f64,
}

impl Default for AreaModel {
    fn default() -> Self {
        Self {
            sa_mac_mm2: 0.00145,
            mt_mac_mm2: 0.00367,
            vu_lane_mm2: 0.004,
            sram_mm2_per_mib: 0.40,
            dram_mm2_per_tbps: 25.0,
            dram_mm2_per_gib: 0.06,
            p2p_mm2_per_gbps: 0.18,
            system_mm2: 189.4,
        }
    }
}

/// Itemized die area for one architecture (C-INTERMEDIATE: callers often
/// want the split, e.g. the Fig. 11 discussion of SA-vs-MT area trades).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaBreakdown {
    /// Systolic arrays.
    pub sa: Area,
    /// MAC trees.
    pub mt: Area,
    /// Vector units.
    pub vu: Area,
    /// All SRAM (local + global).
    pub sram: Area,
    /// DRAM PHY + controllers.
    pub dram_interface: Area,
    /// P2P PHY.
    pub p2p_interface: Area,
    /// Fixed system overhead.
    pub system: Area,
}

impl AreaBreakdown {
    /// Total die area.
    pub fn total(&self) -> Area {
        self.sa
            + self.mt
            + self.vu
            + self.sram
            + self.dram_interface
            + self.p2p_interface
            + self.system
    }

    /// Compute fraction of the die (SA + MT + VU over total).
    pub fn compute_fraction(&self) -> f64 {
        (self.sa + self.mt + self.vu) / self.total()
    }
}

impl fmt::Display for AreaBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SA {} + MT {} + VU {} + SRAM {} + DRAM-IF {} + P2P {} + system {} = {}",
            self.sa,
            self.mt,
            self.vu,
            self.sram,
            self.dram_interface,
            self.p2p_interface,
            self.system,
            self.total()
        )
    }
}

impl AreaModel {
    /// Estimates the die area of `arch` at its own process node.
    ///
    /// If the architecture carries a `die_area_override` (datasheet value
    /// for fabrics we don't decompose), the override is returned as the
    /// `system` component with zeros elsewhere.
    pub fn estimate(&self, arch: &Architecture) -> AreaBreakdown {
        if let Some(die) = arch.die_area_override {
            return AreaBreakdown {
                sa: Area::ZERO,
                mt: Area::ZERO,
                vu: Area::ZERO,
                sram: Area::ZERO,
                dram_interface: Area::ZERO,
                p2p_interface: Area::ZERO,
                system: die,
            };
        }
        let logic_scale = arch.process.area_scale_vs_7nm();
        let mm2 = |x: f64| Area::from_mm2(x);
        AreaBreakdown {
            sa: mm2(arch.sa_macs() as f64 * self.sa_mac_mm2 * logic_scale),
            mt: mm2(arch.mt_macs() as f64 * self.mt_mac_mm2 * logic_scale),
            vu: mm2((arch.vu.lanes() * arch.cores) as f64 * self.vu_lane_mm2 * logic_scale),
            sram: mm2(arch.total_sram().as_mib() * self.sram_mm2_per_mib * logic_scale),
            dram_interface: mm2(arch.dram.bandwidth.as_tbps() * self.dram_mm2_per_tbps
                + arch.dram.capacity.as_gib() * self.dram_mm2_per_gib),
            p2p_interface: mm2(arch.p2p_bandwidth.as_gbps() * self.p2p_mm2_per_gbps),
            system: mm2(self.system_mm2 * logic_scale),
        }
    }

    /// Die area normalized to `target` node, for cross-node comparisons
    /// (Fig. 4a's "Normalized Value with 4nm process"). Logic and SRAM are
    /// rescaled; PHY areas are kept as-is.
    pub fn estimate_normalized(&self, arch: &Architecture, target: ProcessNode) -> Area {
        if let Some(die) = arch.die_area_override {
            // Datasheet dies are rescaled wholesale — we cannot split out
            // their PHYs.
            return Area::from_mm2(arch.process.rescale_area(die.as_mm2(), target));
        }
        let b = self.estimate(arch);
        let logic = b.sa + b.mt + b.vu + b.sram + b.system;
        let phys = b.dram_interface + b.p2p_interface;
        Area::from_mm2(arch.process.rescale_area(logic.as_mm2(), target)) + phys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::DramSpec;
    use crate::{MacTree, SystolicArray};
    use ador_units::{Bandwidth, Bytes, Frequency};

    fn ador_design() -> Architecture {
        Architecture::builder("ADOR Design")
            .cores(32)
            .systolic_array(SystolicArray::square(64))
            .mac_tree(MacTree::new(16, 16))
            .local_memory(Bytes::from_kib(2048))
            .global_memory(Bytes::from_mib(16))
            .dram(DramSpec::hbm2e(
                Bytes::from_gib(80),
                Bandwidth::from_tbps(2.0),
            ))
            .p2p_bandwidth(Bandwidth::from_gbps(64.0))
            .frequency(Frequency::from_mhz(1500.0))
            .build()
    }

    fn llmcompass(
        name: &str,
        sa: usize,
        local_kib: u64,
        global_mib: u64,
        dram: DramSpec,
    ) -> Architecture {
        Architecture::builder(name)
            .cores(64)
            .systolic_array(SystolicArray::square(sa))
            .sa_per_core(4)
            .local_memory(Bytes::from_kib(local_kib))
            .global_memory(Bytes::from_mib(global_mib))
            .dram(dram)
            .p2p_bandwidth(Bandwidth::from_gbps(600.0))
            .frequency(Frequency::from_mhz(1500.0))
            .build()
    }

    #[test]
    fn table3_die_areas_reproduce() {
        let model = AreaModel::default();
        let hbm2 = DramSpec::hbm2e(Bytes::from_gib(80), Bandwidth::from_tbps(2.0));
        let big = DramSpec::new(
            crate::DramKind::Lpddr,
            Bytes::from_gib(512),
            Bandwidth::from_tbps(1.0),
        );
        let cases = [
            (llmcompass("LLMCompass-L", 16, 192, 24, hbm2), 478.0),
            (llmcompass("LLMCompass-T", 32, 768, 48, big), 787.0),
            (ador_design(), 516.0),
        ];
        for (arch, expect) in cases {
            let got = model.estimate(&arch).total().as_mm2();
            let rel = (got - expect).abs() / expect;
            assert!(rel < 0.01, "{}: {got:.1} vs {expect} ({rel:.3})", arch.name);
        }
    }

    #[test]
    fn override_wins() {
        let a = Architecture::builder("A100")
            .peak_flops_override(ador_units::FlopRate::from_tflops(312.0))
            .die_area_override(Area::from_mm2(826.0))
            .build();
        assert_eq!(AreaModel::default().estimate(&a).total().as_mm2(), 826.0);
    }

    #[test]
    fn normalization_shrinks_older_nodes() {
        let model = AreaModel::default();
        let mut arch = ador_design();
        let at7 = model.estimate_normalized(&arch, ProcessNode::N7);
        let at4 = model.estimate_normalized(&arch, ProcessNode::N4);
        assert!(at4 < at7);
        // PHYs don't scale, so the shrink is less than the pure logic ratio.
        assert!(at4.as_mm2() / at7.as_mm2() > 0.58);
        arch.process = ProcessNode::N14;
        let back_to_7 = model.estimate_normalized(&arch, ProcessNode::N7);
        assert!(back_to_7 < model.estimate(&arch).total());
    }

    #[test]
    fn mt_cells_cost_more_than_sa_cells() {
        let m = AreaModel::default();
        assert!(m.mt_mac_mm2 > m.sa_mac_mm2);
    }

    #[test]
    fn breakdown_sums() {
        let model = AreaModel::default();
        let b = model.estimate(&ador_design());
        let manual = b.sa.as_mm2()
            + b.mt.as_mm2()
            + b.vu.as_mm2()
            + b.sram.as_mm2()
            + b.dram_interface.as_mm2()
            + b.p2p_interface.as_mm2()
            + b.system.as_mm2();
        assert!((b.total().as_mm2() - manual).abs() < 1e-9);
        assert!(b.compute_fraction() > 0.3 && b.compute_fraction() < 0.7);
    }
}
