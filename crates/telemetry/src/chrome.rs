//! Chrome trace-event (Perfetto-loadable) JSON export.
//!
//! Renders a fleet run as a waterfall: one *process* per replica, one
//! *track* per request, one complete (`"ph":"X"`) event per lifecycle
//! phase span, and instant (`"ph":"i"`) markers for preemptions and
//! sheds. Load the output in `chrome://tracing` or
//! <https://ui.perfetto.dev>.
//!
//! The emitter is deliberately local (the telemetry crate sits below
//! `ador-bench` in the dependency graph): every name it writes is a
//! fixed ASCII literal and every number is finite, so the fragment
//! assembly stays trivial. Output is a pure function of the event
//! streams — same-seed runs export byte-identical traces.

use crate::event::{Event, EventKind};
use crate::phase::spans;

/// Renders per-replica event streams (`replicas[r]` is replica `r`'s
/// events in recording order) as one Chrome trace-event JSON document.
///
/// Timestamps (`ts`) and durations (`dur`) are microseconds of *sim
/// time*, per the trace-event format. `pid` is the replica index and
/// `tid` the request id, so the viewer groups tracks by replica and
/// lines up each request's phases on one row.
#[must_use]
pub fn chrome_trace(replicas: &[Vec<Event>]) -> String {
    let mut items: Vec<String> = Vec::new();
    for (pid, events) in replicas.iter().enumerate() {
        items.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"replica {pid}\"}}}}"
        ));
        for span in spans(events) {
            let name = span.phase.label();
            let ts = span.start.as_micros();
            let dur = (span.end - span.start).as_micros();
            items.push(format!(
                "{{\"name\":\"{name}\",\"cat\":\"request\",\"ph\":\"X\",\
                 \"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"dur\":{dur}}}",
                tid = span.request,
            ));
        }
        for e in events {
            let name = match e.kind {
                EventKind::Preempt => "preempt",
                EventKind::Shed => "shed",
                EventKind::KvTransferStart { .. } => "kv_transfer_out",
                EventKind::KvTransferEnd { .. } => "kv_transfer_in",
                _ => continue,
            };
            items.push(format!(
                "{{\"name\":\"{name}\",\"cat\":\"request\",\"ph\":\"i\",\
                 \"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"s\":\"t\"}}",
                tid = e.request,
                ts = e.time.as_micros(),
            ));
        }
    }
    format!(
        "{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}",
        items.join(",")
    )
}

#[cfg(test)]
mod tests {
    use ador_units::Seconds;

    use super::*;

    fn ev(t: f64, request: u64, kind: EventKind) -> Event {
        Event {
            time: Seconds::new(t),
            request,
            kind,
        }
    }

    fn sample_stream() -> Vec<Event> {
        vec![
            ev(0.0, 1, EventKind::Enqueue),
            ev(
                0.001,
                1,
                EventKind::Admit {
                    cached_tokens: 0,
                    ideal_us: 0,
                },
            ),
            ev(
                0.002,
                1,
                EventKind::Commit {
                    committed: 1,
                    drafted: 0,
                    accepted: 0,
                },
            ),
            ev(0.003, 1, EventKind::Preempt),
            ev(0.004, 1, EventKind::Resume),
            ev(
                0.005,
                1,
                EventKind::Commit {
                    committed: 1,
                    drafted: 0,
                    accepted: 0,
                },
            ),
            ev(0.006, 1, EventKind::Complete),
        ]
    }

    #[test]
    fn trace_contains_spans_markers_and_metadata() {
        let doc = chrome_trace(&[sample_stream()]);
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.contains("\"name\":\"replica 0\""));
        assert!(doc.contains("\"name\":\"queue\""));
        assert!(doc.contains("\"name\":\"prefill\""));
        assert!(doc.contains("\"name\":\"decode\""));
        assert!(doc.contains("\"name\":\"preempted\""));
        assert!(doc.contains("\"ph\":\"i\""));
        // Timestamps are microseconds: admit at 1 ms = 1000 µs.
        assert!(doc.contains("\"ts\":1000"));
    }

    #[test]
    fn export_is_a_pure_function_of_the_stream() {
        let a = chrome_trace(&[sample_stream(), Vec::new()]);
        let b = chrome_trace(&[sample_stream(), Vec::new()]);
        assert_eq!(a, b);
    }
}
