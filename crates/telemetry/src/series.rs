//! Windowed time-series collection on the sim clock.
//!
//! A [`SeriesCollector`] samples engine state on a fixed sim-time
//! interval. Gauges (queue depth, KV occupancy) are read directly;
//! rates (prefix hit rate, draft acceptance rate, goodput) are computed
//! from cumulative-counter deltas over the window, so each point
//! reflects *that window*, not the run-so-far average.

use ador_units::conv::{f64_from_u64, usize_from_f64};
use ador_units::Seconds;
use serde::Serialize;

/// Smallest accepted sampling interval; shorter requests are clamped so
/// the collector can always make progress.
const MIN_INTERVAL: Seconds = Seconds::ZERO;

/// A cumulative-counter snapshot of one engine, read at a sample point.
/// All counters are totals since the start of the run; the collector
/// differences consecutive snapshots itself.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SeriesSample {
    /// Requests waiting for admission (queued, not yet in the batch).
    pub queue_depth: usize,
    /// Requests currently in the running batch.
    pub active: usize,
    /// KV-cache tokens currently held.
    pub kv_in_use: usize,
    /// Cumulative prompt tokens served from the prefix cache.
    pub hit_tokens: u64,
    /// Cumulative prompt tokens looked up in the prefix cache.
    pub seen_tokens: u64,
    /// Cumulative draft tokens accepted by verification.
    pub accepted: u64,
    /// Cumulative draft tokens proposed by the speculator.
    pub drafted: u64,
    /// Cumulative output tokens committed.
    pub completed_tokens: u64,
}

/// One point of the per-replica time series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SeriesPoint {
    /// Sim time of the sample.
    pub time: Seconds,
    /// Requests waiting for admission at the sample instant.
    pub queue_depth: usize,
    /// Requests in the running batch at the sample instant.
    pub active: usize,
    /// KV-cache tokens held at the sample instant.
    pub kv_in_use: usize,
    /// Prefix-cache hit rate over the window (0 when nothing was
    /// looked up).
    pub prefix_hit_rate: f64,
    /// Draft-token acceptance rate over the window (0 when nothing was
    /// drafted).
    pub acceptance_rate: f64,
    /// Output tokens committed per second over the window.
    pub goodput_tps: f64,
}

/// A completed per-replica time series.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TimeSeries {
    /// Requested sampling interval.
    pub interval: Seconds,
    /// Samples, in sim-time order.
    pub points: Vec<SeriesPoint>,
}

/// Samples [`SeriesSample`] snapshots into a [`TimeSeries`] on a fixed
/// sim-time interval.
///
/// The engine offers a snapshot after every step; the collector takes
/// one point per elapsed interval (a long idle jump yields a single
/// point, not a backlog of identical ones) and timestamps it with the
/// actual sim time of the step that crossed the interval boundary, so
/// the output is a deterministic function of the event sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesCollector {
    interval: Seconds,
    next_at: Seconds,
    last_time: Seconds,
    last: SeriesSample,
    series: TimeSeries,
}

impl SeriesCollector {
    /// Creates a collector sampling every `interval` of sim time.
    /// A zero interval is clamped to one microsecond.
    #[must_use]
    pub fn new(interval: Seconds) -> Self {
        let interval = if interval > MIN_INTERVAL {
            interval
        } else {
            Seconds::from_micros(1.0)
        };
        Self {
            interval,
            next_at: interval,
            last_time: Seconds::ZERO,
            last: SeriesSample::default(),
            series: TimeSeries {
                interval,
                points: Vec::new(),
            },
        }
    }

    /// Offers a snapshot at sim time `now`. Records a point only when
    /// `now` has reached the next sample boundary.
    pub fn observe(&mut self, now: Seconds, sample: &SeriesSample) {
        if now < self.next_at {
            return;
        }
        let elapsed = now - self.last_time;
        let rate = |num: u64, den: u64| {
            if den == 0 {
                0.0
            } else {
                f64_from_u64(num) / f64_from_u64(den)
            }
        };
        let tokens = sample
            .completed_tokens
            .saturating_sub(self.last.completed_tokens);
        let goodput_tps = if elapsed.is_zero() {
            0.0
        } else {
            f64_from_u64(tokens) / elapsed.get()
        };
        self.series.points.push(SeriesPoint {
            time: now,
            queue_depth: sample.queue_depth,
            active: sample.active,
            kv_in_use: sample.kv_in_use,
            prefix_hit_rate: rate(
                sample.hit_tokens.saturating_sub(self.last.hit_tokens),
                sample.seen_tokens.saturating_sub(self.last.seen_tokens),
            ),
            acceptance_rate: rate(
                sample.accepted.saturating_sub(self.last.accepted),
                sample.drafted.saturating_sub(self.last.drafted),
            ),
            goodput_tps,
        });
        self.last = *sample;
        self.last_time = now;
        while self.next_at <= now {
            self.next_at += self.interval;
        }
    }

    /// Finishes collection, returning the series.
    #[must_use]
    pub fn finish(self) -> TimeSeries {
        self.series
    }

    /// The points collected so far.
    #[must_use]
    pub fn points(&self) -> &[SeriesPoint] {
        &self.series.points
    }
}

/// Buckets `(completion_time, tokens)` pairs into fixed windows of
/// `interval` and returns tokens-per-second per window — the per-tenant
/// goodput series computed post-hoc from request outcomes. The series
/// spans `[0, end]`; completions past `end` extend it.
#[must_use]
pub fn goodput_series(completions: &[(Seconds, u64)], interval: Seconds, end: Seconds) -> Vec<f64> {
    let interval = if interval > Seconds::ZERO {
        interval
    } else {
        Seconds::from_micros(1.0)
    };
    let bucket_of = |t: Seconds| usize_from_f64((t / interval).floor());
    let mut windows = vec![0u64; bucket_of(end) + 1];
    for &(t, tokens) in completions {
        let b = bucket_of(t);
        if b >= windows.len() {
            windows.resize(b + 1, 0);
        }
        if let Some(slot) = windows.get_mut(b) {
            *slot += tokens;
        }
    }
    windows
        .into_iter()
        .map(|tokens| f64_from_u64(tokens) / interval.get())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_samples_once_per_interval() {
        let mut c = SeriesCollector::new(Seconds::new(1.0));
        let mut s = SeriesSample::default();
        // Many offers inside the first interval: no points yet.
        c.observe(Seconds::new(0.2), &s);
        c.observe(Seconds::new(0.9), &s);
        assert!(c.points().is_empty());
        // Crossing the boundary takes exactly one point.
        s.completed_tokens = 50;
        c.observe(Seconds::new(1.25), &s);
        assert_eq!(c.points().len(), 1);
        assert_eq!(c.points()[0].time, Seconds::new(1.25));
        assert!((c.points()[0].goodput_tps - 40.0).abs() < 1e-12);
        // A long jump over several intervals still yields one point.
        s.completed_tokens = 70;
        c.observe(Seconds::new(7.5), &s);
        assert_eq!(c.points().len(), 2);
        let p = c.points()[1];
        assert!((p.goodput_tps - 20.0 / 6.25).abs() < 1e-12);
    }

    #[test]
    fn rates_are_windowed_not_cumulative() {
        let mut c = SeriesCollector::new(Seconds::new(1.0));
        let mut s = SeriesSample {
            hit_tokens: 80,
            seen_tokens: 100,
            ..SeriesSample::default()
        };
        c.observe(Seconds::new(1.0), &s);
        assert!((c.points()[0].prefix_hit_rate - 0.8).abs() < 1e-12);
        // Next window: 0 hits out of 100 → windowed rate 0, not 40%.
        s.seen_tokens = 200;
        c.observe(Seconds::new(2.0), &s);
        assert_eq!(c.points()[1].prefix_hit_rate, 0.0);
        // Empty window → rate reports 0 instead of NaN.
        c.observe(Seconds::new(3.0), &s);
        assert_eq!(c.points()[2].acceptance_rate, 0.0);
    }

    #[test]
    fn goodput_series_buckets_completions() {
        let completions = [
            (Seconds::new(0.5), 10u64),
            (Seconds::new(0.9), 10),
            (Seconds::new(2.5), 30),
        ];
        let g = goodput_series(&completions, Seconds::new(1.0), Seconds::new(3.0));
        assert_eq!(g.len(), 4);
        assert!((g[0] - 20.0).abs() < 1e-12);
        assert_eq!(g[1], 0.0);
        assert!((g[2] - 30.0).abs() < 1e-12);
        assert_eq!(g[3], 0.0);
    }

    #[test]
    fn zero_interval_is_clamped() {
        let c = SeriesCollector::new(Seconds::ZERO);
        assert_eq!(c.series.interval, Seconds::from_micros(1.0));
        assert_eq!(goodput_series(&[], Seconds::ZERO, Seconds::ZERO).len(), 1);
    }
}
