//! Time-loss attribution: from lifecycle events to an exact, conserved
//! per-request latency decomposition and per-tenant blame reports.
//!
//! Attainment numbers say *that* a request missed its SLO; this module
//! says *why*. [`attribute_events`] replays a fleet's recorded event
//! streams ([`crate::VecSink`] / [`crate::FlightRecorder`] contents) and
//! decomposes every completed request's end-to-end latency into the
//! component set of [`Components`]:
//!
//! * **queue** — enqueue-to-admission wait (both pools, under
//!   disaggregation);
//! * **prefill ideal vs interference** — the admission-to-first-commit
//!   span split at the request-alone lower bound the engine stamped on
//!   `Admit { ideal_us }`; the excess is chunked-prefill interference
//!   from batch-mates sharing the iteration budget;
//! * **preemption stall + recompute** — time parked off-batch after an
//!   eviction, plus the redone prefill work (the evicted progress and
//!   the recompute-on-resume pass);
//! * **speculative waste** — the rejected-draft share of each verify
//!   step, `dur x rejected / (drafted + 1)` in integer nanoseconds;
//! * **decode ideal vs stall** — each commit interval's net time split
//!   at the request's own best observed per-token rate; stretch beyond
//!   it is charged to prefill interference when a prefill chunk (any
//!   request) landed on the same replica inside the interval, decode
//!   stall otherwise;
//! * **KV handoff** — the prefill-complete-to-decode-enqueue gap of a
//!   disaggregated request (link latency + transfer serialization).
//!
//! **Conservation invariant:** all arithmetic happens on integer
//! nanoseconds (each event timestamp is converted exactly once), every
//! inter-event gap is charged to exactly one component, and splits are
//! integer partitions of a gap — so the components of every returned
//! [`RequestAttribution`] sum *exactly* to its measured end-to-end
//! nanoseconds. A proptest pins this across schedulers, topologies and
//! speculation settings.
//!
//! Fidelity depends on [`crate::EventDetail`]: `PerToken` streams give
//! the full decode split; `Lifecycle` streams elide steady commits, so
//! elided decode time is charged as ideal decode service (still exactly
//! conserved, just coarser). Requests whose lifecycle is incomplete —
//! evicted from a [`crate::FlightRecorder`] ring, shed at the router,
//! or still in flight — are skipped, not guessed at.

use std::collections::BTreeMap;

use ador_units::{conv, Seconds};
use serde::Serialize;

use crate::event::{Event, EventKind};

/// Converts a sim timestamp to integer nanoseconds (exactly once per
/// event, so downstream arithmetic is exact).
fn nanos(t: Seconds) -> u64 {
    conv::u64_from_f64((t.get() * 1e9).round())
}

/// The conserved per-request latency decomposition, in integer
/// nanoseconds. The field sum equals the request's measured end-to-end
/// latency exactly (see the module docs for each component's meaning).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Components {
    /// Enqueue-to-admission wait, across both pools under disaggregation.
    pub queue_ns: u64,
    /// Request-alone prefill lower bound actually realized.
    pub prefill_ideal_ns: u64,
    /// Prefill span beyond the lower bound, plus decode stretch in
    /// intervals where a prefill chunk shared the replica: the cost of
    /// chunked-prefill batch-mates.
    pub prefill_interference_ns: u64,
    /// Time parked off-batch between eviction and re-admission (plus
    /// any decode gap cut short by the eviction).
    pub preempt_stall_ns: u64,
    /// Prefill work thrown away at eviction plus the recompute pass
    /// after resume.
    pub recompute_ns: u64,
    /// Rejected-draft share of verify steps.
    pub spec_waste_ns: u64,
    /// Decode service at the request's best observed per-token rate.
    pub decode_ns: u64,
    /// Decode stretch beyond the best observed rate with no prefill
    /// chunk sharing the replica (KV pressure, verify pricing of
    /// batch-mates, batch-width effects).
    pub decode_stall_ns: u64,
    /// Prefill-complete-to-decode-enqueue gap under disaggregation.
    pub handoff_ns: u64,
}

impl Components {
    /// Sum of every component — equals the request's end-to-end
    /// nanoseconds by the conservation invariant.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.queue_ns
            + self.prefill_ideal_ns
            + self.prefill_interference_ns
            + self.preempt_stall_ns
            + self.recompute_ns
            + self.spec_waste_ns
            + self.decode_ns
            + self.decode_stall_ns
            + self.handoff_ns
    }

    /// Sum of the *loss* components only (everything except ideal
    /// prefill and ideal decode service).
    #[must_use]
    pub fn lost_ns(&self) -> u64 {
        self.total_ns() - self.prefill_ideal_ns - self.decode_ns
    }

    /// Nanoseconds lost to one cause (0 for [`MissCause::Intrinsic`]).
    #[must_use]
    pub fn lost_for(&self, cause: MissCause) -> u64 {
        match cause {
            MissCause::Queue => self.queue_ns,
            MissCause::PrefillInterference => self.prefill_interference_ns,
            MissCause::Preemption => self.preempt_stall_ns + self.recompute_ns,
            MissCause::SpecWaste => self.spec_waste_ns,
            MissCause::DecodeStall => self.decode_stall_ns,
            MissCause::KvHandoff => self.handoff_ns,
            MissCause::Intrinsic => 0,
        }
    }

    /// Field-wise accumulation — exact, since everything is integer.
    pub fn add(&mut self, other: &Self) {
        self.queue_ns += other.queue_ns;
        self.prefill_ideal_ns += other.prefill_ideal_ns;
        self.prefill_interference_ns += other.prefill_interference_ns;
        self.preempt_stall_ns += other.preempt_stall_ns;
        self.recompute_ns += other.recompute_ns;
        self.spec_waste_ns += other.spec_waste_ns;
        self.decode_ns += other.decode_ns;
        self.decode_stall_ns += other.decode_stall_ns;
        self.handoff_ns += other.handoff_ns;
    }
}

/// The dominant reason a request missed its SLO: the loss component
/// that cost it the most time (ties broken by [`MISS_CAUSES`] order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum MissCause {
    /// Waiting in an admission queue dominated.
    Queue,
    /// Chunked-prefill interference from batch-mates dominated.
    PrefillInterference,
    /// Preemption (stall plus recompute penalty) dominated.
    Preemption,
    /// Rejected speculative drafts dominated.
    SpecWaste,
    /// Decode stretch with no co-resident prefill dominated.
    DecodeStall,
    /// The disaggregation KV handoff gap dominated.
    KvHandoff,
    /// No time was lost at all — the SLO is infeasible for this
    /// request's ideal service time on this hardware.
    Intrinsic,
}

/// Every cause, in the fixed priority order used for tie-breaks and for
/// the histogram layout of [`AttributionReport::miss_causes`].
pub const MISS_CAUSES: [MissCause; 7] = [
    MissCause::Queue,
    MissCause::PrefillInterference,
    MissCause::Preemption,
    MissCause::SpecWaste,
    MissCause::DecodeStall,
    MissCause::KvHandoff,
    MissCause::Intrinsic,
];

impl MissCause {
    /// Position in [`MISS_CAUSES`] (and in the report histogram).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Self::Queue => 0,
            Self::PrefillInterference => 1,
            Self::Preemption => 2,
            Self::SpecWaste => 3,
            Self::DecodeStall => 4,
            Self::KvHandoff => 5,
            Self::Intrinsic => 6,
        }
    }

    /// Stable kebab-case label for tables and JSON artifacts.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Queue => "queue",
            Self::PrefillInterference => "prefill-interference",
            Self::Preemption => "preemption",
            Self::SpecWaste => "spec-waste",
            Self::DecodeStall => "decode-stall",
            Self::KvHandoff => "kv-handoff",
            Self::Intrinsic => "intrinsic",
        }
    }
}

impl std::fmt::Display for MissCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One completed request's conserved latency decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct RequestAttribution {
    /// The request id the decomposition belongs to.
    pub request: u64,
    /// Measured end-to-end latency (first enqueue to last complete).
    pub e2e_ns: u64,
    /// Where that time went. Sums exactly to `e2e_ns`.
    pub components: Components,
}

impl RequestAttribution {
    /// The loss component that cost this request the most time
    /// ([`MissCause::Intrinsic`] when nothing was lost).
    #[must_use]
    pub fn dominant_loss(&self) -> MissCause {
        let mut best = MissCause::Intrinsic;
        let mut best_ns = 0u64;
        for cause in MISS_CAUSES {
            let lost = self.components.lost_for(cause);
            if lost > best_ns {
                best = cause;
                best_ns = lost;
            }
        }
        best
    }

    /// True when the components sum exactly to the measured end-to-end
    /// time — the invariant [`attribute_events`] guarantees.
    #[must_use]
    pub fn conserved(&self) -> bool {
        self.components.total_ns() == self.e2e_ns
    }
}

/// Aggregated blame for a set of requests (one tenant class, or a whole
/// fleet). All counters are integers, so [`AttributionReport::merge`]
/// is exact: merging per-tenant reports reproduces the fleet report
/// bit-for-bit.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct AttributionReport {
    /// Completed requests with a full attributed lifecycle.
    pub requests: u64,
    /// How many of them missed their SLO.
    pub misses: u64,
    /// Requests shed at the router — no lifecycle to attribute; they
    /// count as misses in attainment but carry no time-loss here.
    pub shed: u64,
    /// Miss count per dominant cause, indexed like [`MISS_CAUSES`].
    pub miss_causes: [u64; MISS_CAUSES.len()],
    /// Component totals over *all* attributed requests (missed or not)
    /// — the time-lost-per-cause ledger, exact under merge.
    pub totals: Components,
}

impl AttributionReport {
    /// Folds one request in, blaming its dominant loss if it missed.
    pub fn record(&mut self, attr: &RequestAttribution, missed: bool) {
        self.requests += 1;
        self.totals.add(&attr.components);
        if missed {
            self.misses += 1;
            self.miss_causes[attr.dominant_loss().index()] += 1;
        }
    }

    /// Adds `count` shed requests (no lifecycle, no time-loss).
    pub fn record_shed(&mut self, count: u64) {
        self.shed += count;
    }

    /// Exact field-wise merge; merging tenant reports yields the fleet
    /// report with no rounding drift.
    pub fn merge(&mut self, other: &Self) {
        self.requests += other.requests;
        self.misses += other.misses;
        self.shed += other.shed;
        for (mine, theirs) in self.miss_causes.iter_mut().zip(&other.miss_causes) {
            *mine += theirs;
        }
        self.totals.add(&other.totals);
    }

    /// Misses blamed on one cause.
    #[must_use]
    pub fn miss_count(&self, cause: MissCause) -> u64 {
        self.miss_causes[cause.index()]
    }

    /// Total nanoseconds lost to one cause across all requests.
    #[must_use]
    pub fn lost_ns(&self, cause: MissCause) -> u64 {
        self.totals.lost_for(cause)
    }

    /// Total nanoseconds lost across all causes and requests.
    #[must_use]
    pub fn total_lost_ns(&self) -> u64 {
        self.totals.lost_ns()
    }

    /// The cause blamed for the most misses (`None` when nothing
    /// missed); ties resolve to the earlier [`MISS_CAUSES`] entry.
    #[must_use]
    pub fn dominant_cause(&self) -> Option<MissCause> {
        let mut best: Option<MissCause> = None;
        let mut best_count = 0u64;
        for cause in MISS_CAUSES {
            let count = self.miss_count(cause);
            if count > best_count {
                best = Some(cause);
                best_count = count;
            }
        }
        best
    }
}

/// One decode commit interval, pending the rate split of
/// [`finalize_decode`].
struct DecodeInterval {
    start: u64,
    end: u64,
    replica: usize,
    committed: u64,
    drafted: u64,
    accepted: u64,
}

/// Walker phase between two lifecycle boundaries.
enum Ph {
    Queued,
    Prefill { ideal_ns: u64, recompute: bool },
    Decode,
    Stalled,
    Done,
}

/// Replays per-replica event streams into per-request attributions.
///
/// `replicas[r]` is replica `r`'s recorded stream (drained from its
/// sink); a disaggregated request's events are stitched across streams
/// by request id. Returns one [`RequestAttribution`] per request with a
/// complete, well-formed lifecycle, ordered by request id; truncated
/// (ring-evicted), shed, or in-flight requests are skipped.
#[must_use]
pub fn attribute_events(replicas: &[Vec<Event>]) -> Vec<RequestAttribution> {
    // Per-replica sorted prefill-chunk timelines: the witness used to
    // decide whether decode stretch was prefill interference.
    let prefill_ts: Vec<Vec<u64>> = replicas
        .iter()
        .map(|stream| {
            let mut ts: Vec<u64> = stream
                .iter()
                .filter(|e| matches!(e.kind, EventKind::PrefillChunk { .. }))
                .map(|e| nanos(e.time))
                .collect();
            ts.sort_unstable();
            ts
        })
        .collect();

    let mut per_request: BTreeMap<u64, Vec<(u64, usize, EventKind)>> = BTreeMap::new();
    for (replica, stream) in replicas.iter().enumerate() {
        for e in stream {
            per_request
                .entry(e.request)
                .or_default()
                .push((nanos(e.time), replica, e.kind));
        }
    }

    let mut out = Vec::new();
    for (request, mut events) in per_request {
        // Stable sort: `Enqueue` is stamped at arrival time (possibly
        // before previously recorded events), so streams are not
        // globally time-ordered; ties keep recording order.
        events.sort_by_key(|&(t, _, _)| t);
        if let Some(attr) = walk(request, &events, &prefill_ts) {
            debug_assert!(attr.conserved(), "attribution must conserve e2e time");
            out.push(attr);
        }
    }
    out
}

/// Walks one request's time-ordered events, charging every inter-event
/// gap to exactly one component. Returns `None` on any malformed or
/// truncated lifecycle.
fn walk(
    request: u64,
    events: &[(u64, usize, EventKind)],
    prefill_ts: &[Vec<u64>],
) -> Option<RequestAttribution> {
    let (&(start, _, first), rest) = events.split_first()?;
    if first != EventKind::Enqueue {
        return None;
    }
    let mut c = Components::default();
    let mut intervals: Vec<DecodeInterval> = Vec::new();
    let mut at = start;
    let mut end = start;
    let mut ph = Ph::Queued;
    for &(t, replica, kind) in rest {
        let gap = t.checked_sub(at)?;
        match kind {
            // Instant markers: no boundary, the open gap stays open.
            EventKind::PrefillChunk { .. }
            | EventKind::KvTransferStart { .. }
            | EventKind::KvTransferEnd { .. } => continue,
            EventKind::Shed => return None,
            EventKind::Enqueue => {
                // Disaggregation: the finished prefill hands off to a
                // decode pool, where the continuation re-enqueues.
                if !matches!(ph, Ph::Done) {
                    return None;
                }
                c.handoff_ns += gap;
                ph = Ph::Queued;
            }
            EventKind::Admit { ideal_us, .. } => {
                if !matches!(ph, Ph::Queued) {
                    return None;
                }
                c.queue_ns += gap;
                ph = Ph::Prefill {
                    ideal_ns: u64::from(ideal_us) * 1_000,
                    recompute: false,
                };
            }
            EventKind::Resume => {
                if !matches!(ph, Ph::Stalled) {
                    return None;
                }
                c.preempt_stall_ns += gap;
                // The resumed pass redoes lost work: no ideal credit.
                ph = Ph::Prefill {
                    ideal_ns: 0,
                    recompute: true,
                };
            }
            EventKind::Preempt => match ph {
                Ph::Prefill { .. } => {
                    // In-flight prefill progress is discarded on
                    // eviction; that span is pure recompute debt.
                    c.recompute_ns += gap;
                    ph = Ph::Stalled;
                }
                Ph::Decode => {
                    c.preempt_stall_ns += gap;
                    ph = Ph::Stalled;
                }
                _ => return None,
            },
            EventKind::Commit {
                committed,
                drafted,
                accepted,
            } => match ph {
                Ph::Prefill {
                    ideal_ns,
                    recompute,
                } => {
                    if recompute {
                        c.recompute_ns += gap;
                    } else {
                        let ideal = ideal_ns.min(gap);
                        c.prefill_ideal_ns += ideal;
                        c.prefill_interference_ns += gap - ideal;
                    }
                    ph = Ph::Decode;
                }
                Ph::Decode => intervals.push(DecodeInterval {
                    start: at,
                    end: t,
                    replica,
                    committed: u64::from(committed),
                    drafted: u64::from(drafted),
                    accepted: u64::from(accepted),
                }),
                _ => return None,
            },
            EventKind::Complete => {
                if !matches!(ph, Ph::Decode) {
                    return None;
                }
                if gap > 0 {
                    // Lifecycle-detail streams elide steady commits;
                    // the closing gap is indivisible decode service.
                    intervals.push(DecodeInterval {
                        start: at,
                        end: t,
                        replica,
                        committed: 0,
                        drafted: 0,
                        accepted: 0,
                    });
                }
                end = t;
                ph = Ph::Done;
            }
        }
        at = t;
    }
    if !matches!(ph, Ph::Done) {
        return None;
    }
    finalize_decode(&mut c, &intervals, prefill_ts);
    Some(RequestAttribution {
        request,
        e2e_ns: end - start,
        components: c,
    })
}

/// Splits each decode interval's duration into speculative waste, ideal
/// service at the request's best observed rate, and stretch — charged
/// to prefill interference when a prefill chunk shared the replica
/// inside the interval, decode stall otherwise. Integer partitions
/// throughout, so the interval durations are conserved exactly.
fn finalize_decode(c: &mut Components, intervals: &[DecodeInterval], prefill_ts: &[Vec<u64>]) {
    let mut nets: Vec<(u64, u64)> = Vec::with_capacity(intervals.len());
    let mut min_rate: Option<u64> = None;
    for iv in intervals {
        let dur = iv.end - iv.start;
        if iv.committed == 0 {
            nets.push((dur, 0));
            continue;
        }
        let rejected = iv.drafted.saturating_sub(iv.accepted);
        // The verify step processed `drafted + 1` candidate positions;
        // the rejected share of its time is speculative waste.
        let waste = dur * rejected / (iv.drafted + 1);
        let net = dur - waste;
        let rate = net / iv.committed;
        min_rate = Some(min_rate.map_or(rate, |m| m.min(rate)));
        nets.push((net, waste));
    }
    // The request-alone decode baseline: its own best observed net
    // per-token time. `m * committed <= net` for every interval by
    // construction, so the stretch split below never underflows.
    let m = min_rate.unwrap_or(0);
    for (iv, &(net, waste)) in intervals.iter().zip(&nets) {
        c.spec_waste_ns += waste;
        if iv.committed == 0 {
            c.decode_ns += net;
            continue;
        }
        let ideal = m * iv.committed;
        let stretch = net - ideal;
        c.decode_ns += ideal;
        if overlaps_prefill(&prefill_ts[iv.replica], iv.start, iv.end) {
            c.prefill_interference_ns += stretch;
        } else {
            c.decode_stall_ns += stretch;
        }
    }
}

/// True when any prefill chunk landed on the replica in `(start, end]`.
fn overlaps_prefill(ts: &[u64], start: u64, end: u64) -> bool {
    let lo = ts.partition_point(|&x| x <= start);
    ts.get(lo).is_some_and(|&x| x <= end)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: f64, request: u64, kind: EventKind) -> Event {
        Event {
            time: Seconds::new(time),
            request,
            kind,
        }
    }

    fn admit(cached: u32, ideal_us: u32) -> EventKind {
        EventKind::Admit {
            cached_tokens: cached,
            ideal_us,
        }
    }

    fn commit(committed: u32, drafted: u32, accepted: u32) -> EventKind {
        EventKind::Commit {
            committed,
            drafted,
            accepted,
        }
    }

    #[test]
    fn plain_lifecycle_conserves_and_splits_prefill() {
        // Enqueue 0.0, admit 0.010 (ideal 5 ms), first commit 0.030,
        // two decode commits 20 ms apart, complete with the last one.
        let stream = vec![
            ev(0.0, 1, EventKind::Enqueue),
            ev(0.010, 1, admit(0, 5_000)),
            ev(0.030, 1, commit(1, 0, 0)),
            ev(0.050, 1, commit(1, 0, 0)),
            ev(0.070, 1, commit(1, 0, 0)),
            ev(0.070, 1, EventKind::Complete),
        ];
        let attrs = attribute_events(&[stream]);
        assert_eq!(attrs.len(), 1);
        let a = &attrs[0];
        assert!(a.conserved());
        assert_eq!(a.e2e_ns, 70_000_000);
        assert_eq!(a.components.queue_ns, 10_000_000);
        assert_eq!(a.components.prefill_ideal_ns, 5_000_000);
        assert_eq!(a.components.prefill_interference_ns, 15_000_000);
        // Both decode intervals run at the same 20 ms rate: all ideal.
        assert_eq!(a.components.decode_ns, 40_000_000);
        assert_eq!(a.components.decode_stall_ns, 0);
        assert_eq!(a.dominant_loss(), MissCause::PrefillInterference);
    }

    #[test]
    fn decode_stretch_blames_coresident_prefill_chunks() {
        let mut base = vec![
            ev(0.0, 1, EventKind::Enqueue),
            ev(0.0, 1, admit(0, 10_000)),
            ev(0.010, 1, commit(1, 0, 0)),
            ev(0.020, 1, commit(1, 0, 0)), // 10 ms: the best rate
            ev(0.050, 1, commit(1, 0, 0)), // 30 ms: 20 ms stretch
            ev(0.050, 1, EventKind::Complete),
        ];
        // Without any prefill chunk in the stretched interval the
        // stretch is a decode stall...
        let plain = attribute_events(&[base.clone()]);
        assert_eq!(plain[0].components.decode_stall_ns, 20_000_000);
        assert_eq!(plain[0].components.prefill_interference_ns, 0);
        // ...but a batch-mate's chunk inside (0.020, 0.050] flips the
        // blame to prefill interference.
        base.insert(4, ev(0.050, 9, EventKind::PrefillChunk { tokens: 64 }));
        let blamed = attribute_events(&[base]);
        assert_eq!(blamed[0].components.prefill_interference_ns, 20_000_000);
        assert_eq!(blamed[0].components.decode_stall_ns, 0);
        assert!(blamed[0].conserved());
    }

    #[test]
    fn preemption_charges_stall_and_recompute() {
        let stream = vec![
            ev(0.0, 1, EventKind::Enqueue),
            ev(0.0, 1, admit(0, 1_000)),
            ev(0.001, 1, commit(1, 0, 0)),
            ev(0.011, 1, commit(1, 0, 0)),
            ev(0.016, 1, EventKind::Preempt), // 5 ms cut-short decode gap
            ev(0.036, 1, EventKind::Resume),  // 20 ms parked
            ev(0.046, 1, commit(1, 0, 0)),    // 10 ms recompute pass
            ev(0.056, 1, commit(1, 0, 0)),
            ev(0.056, 1, EventKind::Complete),
        ];
        let a = &attribute_events(&[stream])[0];
        assert!(a.conserved());
        assert_eq!(a.components.preempt_stall_ns, 25_000_000);
        assert_eq!(a.components.recompute_ns, 10_000_000);
        assert_eq!(a.dominant_loss(), MissCause::Preemption);
    }

    #[test]
    fn rejected_drafts_become_spec_waste() {
        let stream = vec![
            ev(0.0, 1, EventKind::Enqueue),
            ev(0.0, 1, admit(0, 1_000)),
            ev(0.001, 1, commit(1, 0, 0)),
            // 12 ms verify step: 3 drafted, 1 accepted, 2 committed.
            // Waste = 12 ms * 2 / 4 = 6 ms.
            ev(0.013, 1, commit(2, 3, 1)),
            ev(0.013, 1, EventKind::Complete),
        ];
        let a = &attribute_events(&[stream])[0];
        assert!(a.conserved());
        assert_eq!(a.components.spec_waste_ns, 6_000_000);
    }

    #[test]
    fn disaggregated_handoff_is_stitched_across_streams() {
        let prefill = vec![
            ev(0.0, 1, EventKind::Enqueue),
            ev(0.002, 1, admit(0, 3_000)),
            ev(0.005, 1, commit(1, 0, 0)),
            ev(0.005, 1, EventKind::Complete),
            ev(0.006, 1, EventKind::KvTransferStart { tokens: 128 }),
        ];
        let decode = vec![
            ev(0.009, 1, EventKind::KvTransferEnd { tokens: 128 }),
            ev(0.009, 1, EventKind::Enqueue),
            ev(0.010, 1, admit(128, 100)),
            ev(0.012, 1, commit(1, 0, 0)),
            ev(0.022, 1, commit(1, 0, 0)),
            ev(0.022, 1, EventKind::Complete),
        ];
        let a = &attribute_events(&[prefill, decode])[0];
        assert!(a.conserved());
        assert_eq!(a.e2e_ns, 22_000_000);
        assert_eq!(a.components.handoff_ns, 4_000_000);
        assert_eq!(a.components.queue_ns, 3_000_000);
    }

    #[test]
    fn truncated_or_shed_lifecycles_are_skipped() {
        let truncated = vec![
            // Ring eviction dropped the Enqueue/Admit prefix.
            ev(0.050, 1, commit(1, 0, 0)),
            ev(0.050, 1, EventKind::Complete),
        ];
        let in_flight = vec![ev(0.0, 2, EventKind::Enqueue), ev(0.010, 2, admit(0, 500))];
        let shed = vec![ev(0.0, 3, EventKind::Shed)];
        assert!(attribute_events(&[truncated, in_flight, shed]).is_empty());
    }

    #[test]
    fn report_merge_is_exact_and_blames_the_dominant_cause() {
        let stream = |id: u64, off: f64| {
            vec![
                ev(off, id, EventKind::Enqueue),
                ev(off + 0.050, id, admit(0, 1_000)),
                ev(off + 0.060, id, commit(1, 0, 0)),
                ev(off + 0.070, id, commit(1, 0, 0)),
                ev(off + 0.070, id, EventKind::Complete),
            ]
        };
        let attrs = attribute_events(&[[stream(1, 0.0), stream(2, 0.1)].concat()]);
        let mut a = AttributionReport::default();
        let mut b = AttributionReport::default();
        a.record(&attrs[0], true);
        b.record(&attrs[1], true);
        b.record_shed(3);
        let mut merged = a;
        merged.merge(&b);
        let mut direct = AttributionReport::default();
        direct.record(&attrs[0], true);
        direct.record(&attrs[1], true);
        direct.record_shed(3);
        assert_eq!(merged, direct);
        assert_eq!(merged.requests, 2);
        assert_eq!(merged.misses, 2);
        assert_eq!(merged.shed, 3);
        assert_eq!(merged.dominant_cause(), Some(MissCause::Queue));
        assert_eq!(merged.miss_count(MissCause::Queue), 2);
        assert_eq!(merged.lost_ns(MissCause::Queue), 100_000_000);
        assert_eq!(merged.total_lost_ns(), merged.totals.lost_ns());
    }
}
