//! Structured request-lifecycle events and the sinks that consume them.
//!
//! The engine emits one [`Event`] per request state transition, stamped
//! with **sim time only** — the `ador-lint` wall-clock rule applies to
//! this crate, so nothing here may read `Instant`/`SystemTime`. Sinks
//! are passive observers: recording an event never mutates simulation
//! state, which is what keeps the telemetry-off path bit-identical.

use ador_units::Seconds;
use serde::Serialize;

/// What happened to a request at one point in its lifecycle.
///
/// Token counts are carried as `u32` (saturating; see
/// `ador_units::conv::u32_from_usize`) so one [`Event`] packs into
/// 32 bytes: the engine emits one event per committed token, and at
/// fleet scale the ring-buffer write traffic of tens of millions of
/// events is what the tracing overhead budget is spent on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum EventKind {
    /// The request entered the engine's waiting queue (stamped with its
    /// arrival time).
    Enqueue,
    /// The request was admitted into the running batch for the first
    /// time.
    Admit {
        /// Prompt tokens served from the prefix cache on admission.
        cached_tokens: u32,
        /// Request-alone prefill lower bound from the replica's cost
        /// model, in whole microseconds: what prefilling the remaining
        /// prompt would cost if the request had the engine to itself.
        /// Attribution splits the measured prefill span into this ideal
        /// part and chunked-prefill interference. Zero when the emitter
        /// has no cost model at hand.
        ideal_us: u32,
    },
    /// A previously preempted request re-entered the running batch (its
    /// context is recomputed from scratch).
    Resume,
    /// A chunk of the request's prompt was prefilled this step.
    PrefillChunk {
        /// Prompt tokens processed for this request in the step.
        tokens: u32,
    },
    /// The request was evicted from the running batch (KV pressure or
    /// the stuck-prefill guard) and returned to the front of the queue.
    Preempt,
    /// A decode step appended tokens to the request's output. With
    /// speculative decoding off, `committed == 1` and the draft fields
    /// are zero; with it on, the fields expose the verify outcome.
    Commit {
        /// Tokens appended to the output this step.
        committed: u32,
        /// Draft tokens proposed by the speculator this step.
        drafted: u32,
        /// Draft tokens accepted by verification this step.
        accepted: u32,
    },
    /// The request produced its final token and left the engine.
    Complete,
    /// The cluster router shed the request (per-replica queue cap); it
    /// never reached an engine.
    Shed,
    /// A disaggregated fleet began moving the request's finished prefill
    /// context toward a decode pool — recorded in the *prefill* replica's
    /// stream at the moment the context left it.
    KvTransferStart {
        /// Context tokens whose KV is on the wire.
        tokens: u32,
    },
    /// The transferred context landed on its decode replica — recorded in
    /// the *decode* replica's stream at transfer maturity, just before the
    /// continuation request enqueues there.
    KvTransferEnd {
        /// Context tokens whose KV arrived.
        tokens: u32,
    },
}

/// One timestamped lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Event {
    /// Simulated time at which the transition happened.
    pub time: Seconds,
    /// Id of the request the event belongs to.
    pub request: u64,
    /// The transition itself.
    pub kind: EventKind,
}

/// A consumer of lifecycle events.
///
/// Implementations must be passive (recording must not influence the
/// simulation) and deterministic (no wall clock, no OS entropy) — the
/// same event stream must produce the same sink state on every run.
pub trait EventSink: std::fmt::Debug {
    /// Records one event.
    fn record(&mut self, event: &Event);

    /// Removes and returns every buffered event, oldest first. Sinks
    /// that do not buffer return an empty vector.
    fn drain(&mut self) -> Vec<Event> {
        Vec::new()
    }
}

/// An unbounded, in-order event log — the full-fidelity sink behind
/// trace export. Memory grows with the run; prefer [`FlightRecorder`]
/// for large fleets.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct VecSink {
    events: Vec<Event>,
}

impl VecSink {
    /// Creates an empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded events, oldest first.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }
}

impl EventSink for VecSink {
    #[inline]
    fn record(&mut self, event: &Event) {
        self.events.push(*event);
    }

    fn drain(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.events)
    }
}

/// A bounded ring buffer holding the most recent events — the
/// "flight recorder" for post-mortem of requests that missed their SLO.
/// Once full, each new event evicts the oldest one, so memory stays
/// constant no matter how long the run is.
///
/// Recording is a single in-place overwrite on a flat buffer (no
/// deque shuffling), because the engine emits one event per committed
/// token: at fleet scale this runs tens of millions of times and is
/// the dominant cost of turning tracing on.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecorder {
    capacity: usize,
    /// Write cursor; once the buffer is full it is also the index of
    /// the oldest retained event.
    head: usize,
    events: Vec<Event>,
}

impl FlightRecorder {
    /// Creates a recorder keeping the last `capacity` events
    /// (`capacity` is clamped to at least 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            head: 0,
            events: Vec::with_capacity(capacity),
        }
    }

    /// Maximum number of retained events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        // Until the buffer wraps, `head` is 0 and the second slice is
        // empty; afterwards the oldest event sits at `head`.
        let (newer, older) = (self.events.get(..self.head), self.events.get(self.head..));
        older
            .unwrap_or_default()
            .iter()
            .chain(newer.unwrap_or_default().iter())
    }

    /// The retained events for one request, oldest first — the
    /// post-mortem view for a single SLO-missing request.
    #[must_use]
    pub fn for_request(&self, request: u64) -> Vec<Event> {
        self.events()
            .filter(|e| e.request == request)
            .copied()
            .collect()
    }
}

impl EventSink for FlightRecorder {
    #[inline]
    fn record(&mut self, event: &Event) {
        if self.events.len() < self.capacity {
            self.events.push(*event);
        } else if let Some(slot) = self.events.get_mut(self.head) {
            *slot = *event;
            self.head += 1;
            if self.head == self.capacity {
                self.head = 0;
            }
        }
    }

    fn drain(&mut self) -> Vec<Event> {
        let drained = self.events().copied().collect();
        self.events.clear();
        self.head = 0;
        drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: f64, request: u64, kind: EventKind) -> Event {
        Event {
            time: Seconds::new(t),
            request,
            kind,
        }
    }

    #[test]
    fn vec_sink_preserves_order_and_drains() {
        let mut sink = VecSink::new();
        sink.record(&ev(0.0, 1, EventKind::Enqueue));
        sink.record(&ev(
            0.5,
            1,
            EventKind::Admit {
                cached_tokens: 0,
                ideal_us: 0,
            },
        ));
        assert_eq!(sink.events().len(), 2);
        let drained = sink.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].kind, EventKind::Enqueue);
        assert!(sink.events().is_empty());
    }

    #[test]
    fn flight_recorder_keeps_only_the_most_recent_events() {
        let mut ring = FlightRecorder::new(3);
        for i in 0..5u64 {
            ring.record(&ev(i as f64, i, EventKind::Enqueue));
        }
        assert_eq!(ring.len(), 3);
        let kept: Vec<u64> = ring.events().map(|e| e.request).collect();
        assert_eq!(kept, vec![2, 3, 4]);
    }

    #[test]
    fn flight_recorder_filters_per_request() {
        let mut ring = FlightRecorder::new(8);
        ring.record(&ev(0.0, 7, EventKind::Enqueue));
        ring.record(&ev(0.1, 9, EventKind::Enqueue));
        ring.record(&ev(0.2, 7, EventKind::Complete));
        let seven = ring.for_request(7);
        assert_eq!(seven.len(), 2);
        assert_eq!(seven[1].kind, EventKind::Complete);
        assert_eq!(ring.for_request(8), Vec::new());
    }

    #[test]
    fn events_stay_one_32_byte_slot() {
        // The tracing overhead budget (BENCH_telemetry.json) is spent
        // almost entirely on ring writes; growing the event struct
        // grows that traffic proportionally. Widen deliberately or
        // repack, don't drift.
        assert!(std::mem::size_of::<Event>() <= 32);
    }

    #[test]
    fn flight_recorder_drains_oldest_first_after_wrapping() {
        let mut ring = FlightRecorder::new(4);
        for i in 0..11u64 {
            ring.record(&ev(i as f64, i, EventKind::Enqueue));
        }
        let drained: Vec<u64> = ring.drain().iter().map(|e| e.request).collect();
        assert_eq!(drained, vec![7, 8, 9, 10]);
        assert!(ring.is_empty(), "drain resets the ring");
        ring.record(&ev(99.0, 99, EventKind::Complete));
        let kept: Vec<u64> = ring.events().map(|e| e.request).collect();
        assert_eq!(kept, vec![99], "the ring is reusable after a drain");
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut ring = FlightRecorder::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.record(&ev(0.0, 1, EventKind::Enqueue));
        ring.record(&ev(1.0, 2, EventKind::Enqueue));
        assert_eq!(ring.len(), 1);
    }
}
