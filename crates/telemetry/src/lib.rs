//! Deterministic observability for the ADOR serving simulator.
//!
//! Production serving stacks explain *why* a request missed its latency
//! target — queue wait vs chunked-prefill interference vs preemption vs
//! verify stalls — not just that it did. This crate gives the simulator
//! the same visibility without compromising the property everything
//! else rests on: determinism. Four pieces:
//!
//! * [`Event`]/[`EventSink`] — structured request-lifecycle events
//!   (enqueue, admit, prefill-chunk, preempt, resume, commit, complete,
//!   shed) stamped with **sim time only**, plus the bounded
//!   [`FlightRecorder`] ring for post-mortems of SLO-missing requests;
//! * [`LatencyHistogram`] — log-bucketed (HDR-style) histograms whose
//!   fixed bucket boundaries make merging exact, backing pooled
//!   percentile merges and the per-phase decompositions in
//!   [`PhaseHistograms`];
//! * [`SeriesCollector`]/[`TimeSeries`] — windowed time series (queue
//!   depth, KV occupancy, prefix hit rate, acceptance rate, goodput)
//!   sampled on a configurable sim-time interval;
//! * [`chrome_trace`] — a Chrome trace-event (Perfetto-loadable) JSON
//!   exporter rendering a fleet run as a per-replica/per-request
//!   waterfall.
//!
//! Everything is **zero-overhead when off**: the engine emits nothing
//! unless a sink is installed, and sinks are passive, so the
//! telemetry-off path is bit-identical to a build without this crate.
//! The `ador-lint` determinism rules (no wall clock, no OS entropy, no
//! unordered iteration) apply to this crate exactly as to the sim
//! crates it observes.
//!
//! # Examples
//!
//! ```
//! use ador_telemetry::{chrome_trace, Event, EventKind, EventSink, VecSink};
//! use ador_units::Seconds;
//!
//! let mut sink = VecSink::new();
//! sink.record(&Event {
//!     time: Seconds::ZERO,
//!     request: 1,
//!     kind: EventKind::Enqueue,
//! });
//! sink.record(&Event {
//!     time: Seconds::from_millis(3.0),
//!     request: 1,
//!     kind: EventKind::Admit { cached_tokens: 0, ideal_us: 0 },
//! });
//! let trace = chrome_trace(&[sink.drain()]);
//! assert!(trace.contains("\"name\":\"queue\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attribution;
mod chrome;
mod event;
mod hist;
mod phase;
mod series;

pub use attribution::{
    attribute_events, AttributionReport, Components, MissCause, RequestAttribution, MISS_CAUSES,
};
pub use chrome::chrome_trace;
pub use event::{Event, EventKind, EventSink, FlightRecorder, VecSink};
pub use hist::{LatencyHistogram, SUB_BUCKETS};
pub use phase::{spans, Phase, PhaseHistograms, Span};
pub use series::{goodput_series, SeriesCollector, SeriesPoint, SeriesSample, TimeSeries};

use ador_units::Seconds;
use serde::{Deserialize, Serialize};

/// Which event sink the engine installs at construction.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventSinkKind {
    /// No sink: the zero-overhead default.
    #[default]
    Off,
    /// Unbounded in-order log ([`VecSink`]) — full-fidelity tracing;
    /// memory grows with the run.
    Log,
    /// Bounded ring ([`FlightRecorder`]) keeping the most recent
    /// events — constant memory, for always-on fleet runs.
    Ring {
        /// Maximum retained events.
        capacity: usize,
    },
}

/// How much of the decode path lands in the event stream.
///
/// Decode commits are the event flood: one per request per step, so a
/// fleet run emits tens of millions of them, and they dominate the
/// cost of tracing. The phase structure of a request — where
/// [`PhaseHistograms`] and [`chrome_trace`] get their spans — only
/// needs the *first* commit after each admission or resume, so the
/// always-on production configuration can elide the steady one-token
/// commits and keep everything else.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventDetail {
    /// Every lifecycle transition, including one `Commit` per decode
    /// step per request — full-fidelity per-token timing (the default).
    #[default]
    PerToken,
    /// Phase boundaries only: `Commit` is emitted for a request's
    /// first tokens after admission or resume, and for any verify step
    /// that carried speculative drafts (the verify outcome is the
    /// payload). Steady single-token decode steps are elided — their
    /// aggregate rate is still visible in the windowed time series.
    Lifecycle,
}

/// Telemetry configuration threaded through `SimConfig`/`ClusterConfig`.
///
/// The default ([`TelemetryConfig::OFF`]) records nothing and adds no
/// work to the hot path.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TelemetryConfig {
    /// Lifecycle-event sink to install.
    pub events: EventSinkKind,
    /// Decode-path granularity of the event stream.
    pub detail: EventDetail,
    /// Time-series sampling interval; `None` disables collection.
    pub series_interval: Option<Seconds>,
    /// Run time-loss attribution over the recorded event stream when
    /// the fleet report is assembled (see [`attribution`]). Requires an
    /// event sink; ignored when `events` is off. Off by default so a
    /// plain traced run's report stays byte-identical to earlier
    /// releases.
    pub attribution: bool,
}

impl TelemetryConfig {
    /// Everything off (the default).
    pub const OFF: Self = Self {
        events: EventSinkKind::Off,
        detail: EventDetail::PerToken,
        series_interval: None,
        attribution: false,
    };

    /// Full-fidelity tracing: unbounded event log, no time series.
    #[must_use]
    pub fn trace() -> Self {
        Self {
            events: EventSinkKind::Log,
            ..Self::OFF
        }
    }

    /// Flight-recorder mode: bounded ring of the last `capacity`
    /// events.
    #[must_use]
    pub fn flight_recorder(capacity: usize) -> Self {
        Self {
            events: EventSinkKind::Ring { capacity },
            ..Self::OFF
        }
    }

    /// Adds windowed time-series sampling every `interval` of sim time.
    #[must_use]
    pub fn with_series(mut self, interval: Seconds) -> Self {
        self.series_interval = Some(interval);
        self
    }

    /// Sets the decode-path event granularity (see [`EventDetail`]).
    #[must_use]
    pub fn with_detail(mut self, detail: EventDetail) -> Self {
        self.detail = detail;
        self
    }

    /// Enables time-loss attribution over the recorded events (see
    /// [`attribution`]). Only meaningful together with an event sink.
    #[must_use]
    pub fn with_attribution(mut self) -> Self {
        self.attribution = true;
        self
    }

    /// True when the fleet report should carry an attribution section:
    /// attribution is requested and an event sink exists to feed it.
    #[must_use]
    pub fn attribution_enabled(&self) -> bool {
        self.attribution && self.events_enabled()
    }

    /// True when any telemetry is enabled.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.events_enabled() || self.series_interval.is_some()
    }

    /// True when an event sink is requested.
    #[must_use]
    pub fn events_enabled(&self) -> bool {
        self.events != EventSinkKind::Off
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_is_the_default_and_disabled() {
        assert_eq!(TelemetryConfig::default(), TelemetryConfig::OFF);
        assert!(!TelemetryConfig::OFF.enabled());
        assert!(TelemetryConfig::trace().events_enabled());
        assert!(TelemetryConfig::flight_recorder(1024).events_enabled());
        let cfg = TelemetryConfig::OFF.with_series(Seconds::new(1.0));
        assert!(cfg.enabled() && !cfg.events_enabled());
    }

    #[test]
    fn detail_defaults_to_per_token_and_is_configurable() {
        assert_eq!(TelemetryConfig::trace().detail, EventDetail::PerToken);
        let cfg = TelemetryConfig::flight_recorder(64).with_detail(EventDetail::Lifecycle);
        assert_eq!(cfg.detail, EventDetail::Lifecycle);
        assert!(cfg.events_enabled());
    }

    #[test]
    fn attribution_defaults_off_and_requires_an_event_sink() {
        assert!(!TelemetryConfig::trace().attribution_enabled());
        assert!(TelemetryConfig::trace()
            .with_attribution()
            .attribution_enabled());
        // Attribution without events has nothing to read: not enabled.
        let no_events = TelemetryConfig::OFF.with_attribution();
        assert!(no_events.attribution && !no_events.attribution_enabled());
    }
}
