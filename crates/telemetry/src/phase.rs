//! Per-request phase decomposition of an event stream.
//!
//! Turns the flat lifecycle [`Event`] stream into spans — the answer to
//! "*why* did this request miss its TTFT target": time queued, time in
//! chunked prefill, time decoding, and time stalled by preemption.

use std::collections::BTreeMap;

use ador_units::Seconds;

use crate::event::{Event, EventKind};
use crate::hist::LatencyHistogram;

/// The lifecycle phase a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Enqueue → first admission: waiting for batch slots/KV headroom.
    Queue,
    /// Admission (or resume) → first committed token: chunked prefill.
    Prefill,
    /// First committed token → completion: token generation.
    Decode,
    /// Preemption → resume: evicted from the batch, awaiting recompute.
    Stall,
}

impl Phase {
    /// Stable lower-case label (used as the Chrome trace event name).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Phase::Queue => "queue",
            Phase::Prefill => "prefill",
            Phase::Decode => "decode",
            Phase::Stall => "preempted",
        }
    }
}

/// One contiguous phase interval of one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// The request the span belongs to.
    pub request: u64,
    /// Which phase the interval covers.
    pub phase: Phase,
    /// Sim time the phase began.
    pub start: Seconds,
    /// Sim time the phase ended.
    pub end: Seconds,
}

/// Derives phase spans from an event stream (one engine's events, in
/// recording order). Spans are emitted in the order they *close*, which
/// is deterministic for a deterministic stream. Phases still open when
/// the stream ends (requests in flight) are dropped.
#[must_use]
pub fn spans(events: &[Event]) -> Vec<Span> {
    let mut open: BTreeMap<u64, (Phase, Seconds)> = BTreeMap::new();
    let mut out = Vec::new();
    let close = |open: &mut BTreeMap<u64, (Phase, Seconds)>,
                 out: &mut Vec<Span>,
                 request: u64,
                 end: Seconds| {
        if let Some((phase, start)) = open.remove(&request) {
            if end >= start {
                out.push(Span {
                    request,
                    phase,
                    start,
                    end,
                });
            }
        }
    };
    for e in events {
        match e.kind {
            EventKind::Enqueue => {
                open.insert(e.request, (Phase::Queue, e.time));
            }
            EventKind::Admit { .. } | EventKind::Resume => {
                close(&mut open, &mut out, e.request, e.time);
                open.insert(e.request, (Phase::Prefill, e.time));
            }
            EventKind::PrefillChunk { .. } => {}
            EventKind::Commit { .. } => {
                // The first commit ends prefill; later commits extend
                // the already-open decode span.
                if let Some(&(Phase::Prefill, _)) = open.get(&e.request) {
                    close(&mut open, &mut out, e.request, e.time);
                    open.insert(e.request, (Phase::Decode, e.time));
                }
            }
            EventKind::Preempt => {
                close(&mut open, &mut out, e.request, e.time);
                open.insert(e.request, (Phase::Stall, e.time));
            }
            EventKind::Complete => {
                close(&mut open, &mut out, e.request, e.time);
            }
            EventKind::Shed => {
                close(&mut open, &mut out, e.request, e.time);
            }
            // Transfer endpoints are instant markers around the pool
            // handoff: the prefill side already closed its spans with
            // `Complete`, and the decode side opens fresh ones at the
            // continuation's `Enqueue`.
            EventKind::KvTransferStart { .. } | EventKind::KvTransferEnd { .. } => {}
        }
    }
    out
}

/// Per-phase duration histograms — the TTFT/TBT decomposition over a
/// whole event stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseHistograms {
    /// Queue-wait durations.
    pub queue: LatencyHistogram,
    /// Prefill durations (per contiguous prefill interval).
    pub prefill: LatencyHistogram,
    /// Decode durations.
    pub decode: LatencyHistogram,
    /// Preemption-stall durations.
    pub stall: LatencyHistogram,
}

impl PhaseHistograms {
    /// Aggregates every span of `events` into per-phase histograms.
    #[must_use]
    pub fn from_events(events: &[Event]) -> Self {
        let mut h = Self::default();
        for span in spans(events) {
            let d = span.end - span.start;
            match span.phase {
                Phase::Queue => h.queue.record(d),
                Phase::Prefill => h.prefill.record(d),
                Phase::Decode => h.decode.record(d),
                Phase::Stall => h.stall.record(d),
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: f64, request: u64, kind: EventKind) -> Event {
        Event {
            time: Seconds::new(t),
            request,
            kind,
        }
    }

    #[test]
    fn simple_lifecycle_decomposes_into_three_phases() {
        let events = [
            ev(0.0, 1, EventKind::Enqueue),
            ev(
                1.0,
                1,
                EventKind::Admit {
                    cached_tokens: 0,
                    ideal_us: 0,
                },
            ),
            ev(1.5, 1, EventKind::PrefillChunk { tokens: 256 }),
            ev(
                2.0,
                1,
                EventKind::Commit {
                    committed: 1,
                    drafted: 0,
                    accepted: 0,
                },
            ),
            ev(5.0, 1, EventKind::Complete),
        ];
        let s = spans(&events);
        assert_eq!(s.len(), 3);
        assert_eq!(s[0].phase, Phase::Queue);
        assert_eq!((s[0].start.get(), s[0].end.get()), (0.0, 1.0));
        assert_eq!(s[1].phase, Phase::Prefill);
        assert_eq!((s[1].start.get(), s[1].end.get()), (1.0, 2.0));
        assert_eq!(s[2].phase, Phase::Decode);
        assert_eq!((s[2].start.get(), s[2].end.get()), (2.0, 5.0));
    }

    #[test]
    fn preemption_inserts_a_stall_and_a_second_prefill() {
        let commit = EventKind::Commit {
            committed: 1,
            drafted: 0,
            accepted: 0,
        };
        let events = [
            ev(0.0, 7, EventKind::Enqueue),
            ev(
                0.5,
                7,
                EventKind::Admit {
                    cached_tokens: 0,
                    ideal_us: 0,
                },
            ),
            ev(1.0, 7, commit),
            ev(2.0, 7, EventKind::Preempt),
            ev(3.0, 7, EventKind::Resume),
            ev(4.0, 7, commit),
            ev(6.0, 7, EventKind::Complete),
        ];
        let phases: Vec<Phase> = spans(&events).iter().map(|s| s.phase).collect();
        assert_eq!(
            phases,
            vec![
                Phase::Queue,
                Phase::Prefill,
                Phase::Decode,
                Phase::Stall,
                Phase::Prefill,
                Phase::Decode,
            ]
        );
        let h = PhaseHistograms::from_events(&events);
        assert_eq!(h.stall.count(), 1);
        assert_eq!(h.stall.max(), Seconds::new(1.0));
        assert_eq!(h.prefill.count(), 2);
    }

    #[test]
    fn in_flight_requests_produce_no_dangling_spans() {
        let events = [
            ev(0.0, 1, EventKind::Enqueue),
            ev(
                1.0,
                1,
                EventKind::Admit {
                    cached_tokens: 0,
                    ideal_us: 0,
                },
            ),
        ];
        let s = spans(&events);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].phase, Phase::Queue);
    }

    #[test]
    fn interleaved_requests_stay_separate() {
        let events = [
            ev(0.0, 1, EventKind::Enqueue),
            ev(0.2, 2, EventKind::Enqueue),
            ev(
                1.0,
                2,
                EventKind::Admit {
                    cached_tokens: 64,
                    ideal_us: 0,
                },
            ),
            ev(
                2.0,
                1,
                EventKind::Admit {
                    cached_tokens: 0,
                    ideal_us: 0,
                },
            ),
        ];
        let s = spans(&events);
        assert_eq!(s.len(), 2);
        assert_eq!((s[0].request, s[0].end.get()), (2, 1.0));
        assert_eq!((s[1].request, s[1].end.get()), (1, 2.0));
    }
}
