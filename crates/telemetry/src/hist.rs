//! Log-bucketed latency histograms with fixed, deterministic bucket
//! boundaries.
//!
//! The design is HDR-histogram-like: each power-of-two octave of the
//! value range is split into [`SUB_BUCKETS`] linear sub-buckets, so the
//! relative bucket width is at most 1/16 (6.25%) everywhere. Bucket
//! boundaries are *fixed constants of the type* — they do not depend on
//! the recorded data — which makes merging two histograms an exact
//! elementwise count addition. That is the property that lets
//! `QosReport::merge` report pooled percentiles instead of the old
//! conservative max-over-groups upper bound.
//!
//! Bucket indexing uses only f64 bit manipulation (exponent plus the
//! top four mantissa bits): no `log`, no libm, bit-identical on every
//! platform.
//!
//! Percentiles use the same ceil nearest-rank convention as
//! `LatencyStats::from_samples` in `ador-serving`, and return the
//! *upper edge* of the selected bucket (clamped to the recorded
//! maximum): the reported value is never below the exact percentile and
//! at most 6.25% above it.

use ador_units::conv::{f64_from_u64, f64_from_usize, u64_from_f64};
use ador_units::Seconds;
use serde::Serialize;

/// Linear sub-buckets per power-of-two octave.
pub const SUB_BUCKETS: usize = 16;

/// Smallest distinguished octave: values below 2^-20 s (≈ 0.95 µs) land
/// in the first bucket. Sub-microsecond latencies are below the
/// resolution of the performance model.
const OCTAVE_FLOOR: f64 = 9.536_743_164_062_5e-7; // 2^-20, exact

/// Biased f64 exponent of [`OCTAVE_FLOOR`] (1023 − 20).
const BIASED_MIN: u64 = 1003;

/// Biased f64 exponent of the largest octave, 2^12 s ≈ 68 min
/// (1023 + 12). Values at or above 2^13 s clamp into the last bucket.
const BIASED_MAX: u64 = 1035;

/// Total bucket count: 33 octaves × 16 sub-buckets.
const BUCKETS: usize = 528;

/// A mergeable latency histogram over [`Seconds`] samples.
///
/// Exact zeros get a dedicated counter (a zero TBT is a real outcome
/// for single-token responses), and the exact minimum, maximum, count
/// and sum are carried alongside the buckets, so `mean()` and `max` are
/// exact while percentiles are bucket-resolution.
///
/// # Examples
///
/// ```
/// use ador_telemetry::LatencyHistogram;
/// use ador_units::Seconds;
///
/// let mut h = LatencyHistogram::new();
/// for ms in [10.0, 20.0, 30.0, 40.0] {
///     h.record(Seconds::from_millis(ms));
/// }
/// let p50 = h.percentile(0.5);
/// assert!(p50 >= Seconds::from_millis(20.0));
/// assert!(p50.get() <= 0.020 * 1.0625);
/// assert_eq!(h.max(), Seconds::from_millis(40.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    zeros: u64,
    count: u64,
    sum: Seconds,
    min: Seconds,
    max: Seconds,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            zeros: 0,
            count: 0,
            sum: Seconds::ZERO,
            min: Seconds::ZERO,
            max: Seconds::ZERO,
        }
    }

    /// Builds a histogram from a slice of samples.
    #[must_use]
    pub fn from_samples(samples: &[Seconds]) -> Self {
        let mut h = Self::new();
        for &s in samples {
            h.record(s);
        }
        h
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of all samples.
    #[must_use]
    pub fn sum(&self) -> Seconds {
        self.sum
    }

    /// Exact mean ([`Seconds::ZERO`] when empty).
    #[must_use]
    pub fn mean(&self) -> Seconds {
        if self.count == 0 {
            Seconds::ZERO
        } else {
            self.sum / f64_from_u64(self.count)
        }
    }

    /// Exact minimum recorded sample ([`Seconds::ZERO`] when empty).
    #[must_use]
    pub fn min(&self) -> Seconds {
        self.min
    }

    /// Exact maximum recorded sample ([`Seconds::ZERO`] when empty).
    #[must_use]
    pub fn max(&self) -> Seconds {
        self.max
    }

    /// Records one sample.
    pub fn record(&mut self, value: Seconds) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
        if value.is_zero() {
            self.zeros += 1;
        } else if let Some(slot) = self.counts.get_mut(bucket_index(value.get())) {
            *slot += 1;
        }
    }

    /// Folds `other` into `self`. Because bucket boundaries are fixed,
    /// the merge is exact: the result is identical to having recorded
    /// both sample populations into one histogram.
    pub fn merge(&mut self, other: &Self) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.zeros += other.zeros;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The `q`-quantile by ceil nearest rank (`q` is clamped to
    /// `[0, 1]`), as the upper edge of the selected bucket, clamped to
    /// the exact recorded maximum. Returns [`Seconds::ZERO`] when
    /// empty.
    ///
    /// Guarantee: `exact ≤ percentile(q) ≤ exact × 1.0625`.
    #[must_use]
    pub fn percentile(&self, q: f64) -> Seconds {
        if self.count == 0 {
            return Seconds::ZERO;
        }
        let rank = (q.clamp(0.0, 1.0) * f64_from_u64(self.count)).ceil();
        let rank = u64_from_f64(rank).clamp(1, self.count);
        if rank == self.count {
            return self.max;
        }
        let mut seen = self.zeros;
        if seen >= rank {
            return Seconds::ZERO;
        }
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // The last bucket absorbs clamped out-of-range values,
                // so its edge does not bound them; fall back to the
                // exact maximum there.
                if i == BUCKETS - 1 {
                    return self.max;
                }
                return Seconds::new(bucket_upper_edge(i)).min(self.max);
            }
        }
        self.max
    }
}

/// Bucket index for a positive, finite value: the biased exponent
/// selects the octave, the top four mantissa bits the linear
/// sub-bucket. Out-of-range values clamp into the first or last bucket.
fn bucket_index(value: f64) -> usize {
    let bits = value.to_bits();
    let biased = (bits >> 52) & 0x7ff;
    if biased < BIASED_MIN {
        return 0;
    }
    if biased > BIASED_MAX {
        return BUCKETS - 1;
    }
    let sub = (bits >> 48) & 0xf;
    let index = (biased - BIASED_MIN) * 16 + sub;
    usize::try_from(index).unwrap_or(BUCKETS - 1)
}

/// Exclusive upper edge of bucket `index`:
/// `2^(octave) × (1 + (sub + 1) / 16)`. Computed by repeated doubling —
/// exact f64 arithmetic, no libm.
fn bucket_upper_edge(index: usize) -> f64 {
    let octave = index / SUB_BUCKETS;
    let sub = index % SUB_BUCKETS;
    let mut base = OCTAVE_FLOOR;
    for _ in 0..octave {
        base *= 2.0;
    }
    base * (1.0 + f64_from_usize(sub + 1) / 16.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn exact_percentile(sorted: &[Seconds], q: f64) -> Seconds {
        let rank = (q * sorted.len() as f64).ceil().max(1.0) as usize;
        sorted[rank.min(sorted.len()) - 1]
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), Seconds::ZERO);
        assert_eq!(h.percentile(0.99), Seconds::ZERO);
    }

    #[test]
    fn zeros_are_exact() {
        let mut h = LatencyHistogram::new();
        h.record(Seconds::ZERO);
        h.record(Seconds::ZERO);
        h.record(Seconds::new(1.0));
        assert_eq!(h.percentile(0.5), Seconds::ZERO);
        assert_eq!(h.percentile(1.0), Seconds::new(1.0));
        assert_eq!(h.min(), Seconds::ZERO);
    }

    #[test]
    fn top_quantile_is_the_exact_max() {
        let h = LatencyHistogram::from_samples(&[
            Seconds::from_millis(3.0),
            Seconds::from_millis(17.0),
            Seconds::from_millis(250.0),
        ]);
        assert_eq!(h.percentile(1.0), Seconds::from_millis(250.0));
        assert_eq!(h.max(), Seconds::from_millis(250.0));
    }

    #[test]
    fn out_of_range_values_clamp_instead_of_panicking() {
        let mut h = LatencyHistogram::new();
        h.record(Seconds::new(1e-12)); // below the first octave
        h.record(Seconds::new(1e9)); // above the last octave
        assert_eq!(h.count(), 2);
        assert_eq!(h.percentile(1.0), Seconds::new(1e9));
        // The tiny value's bucket edge upper-bounds it.
        assert!(h.percentile(0.25) >= Seconds::new(1e-12));
    }

    #[test]
    fn bucket_edges_are_monotone() {
        let mut prev = 0.0;
        for i in 0..BUCKETS {
            let edge = bucket_upper_edge(i);
            assert!(edge > prev, "bucket {i}: {edge} <= {prev}");
            prev = edge;
        }
    }

    proptest! {
        /// A percentile is never below the exact value and at most
        /// 6.25% above it, for any in-range sample population.
        #[test]
        fn percentile_brackets_exact(
            samples in proptest::collection::vec(1e-6f64..1e3, 1..200),
            q in 0.01f64..1.0,
        ) {
            let secs: Vec<Seconds> = samples.iter().map(|&x| Seconds::new(x)).collect();
            let h = LatencyHistogram::from_samples(&secs);
            let mut ordered = samples.clone();
            ordered.sort_by(f64::total_cmp);
            let sorted: Vec<Seconds> = ordered.iter().map(|&x| Seconds::new(x)).collect();
            let exact = exact_percentile(&sorted, q);
            let est = h.percentile(q);
            prop_assert!(est >= exact, "{est:?} < {exact:?}");
            prop_assert!(est.get() <= exact.get() * 1.0625 + 1e-12, "{est:?} vs {exact:?}");
        }

        /// Merging two histograms is exactly pooling their samples
        /// (the running sum may differ in FP rounding; everything
        /// bucket-derived is bit-equal).
        #[test]
        fn merge_equals_pooled(
            a in proptest::collection::vec(0.0f64..1e3, 0..80),
            b in proptest::collection::vec(0.0f64..1e3, 0..80),
        ) {
            let sa: Vec<Seconds> = a.iter().map(|&x| Seconds::new(x)).collect();
            let sb: Vec<Seconds> = b.iter().map(|&x| Seconds::new(x)).collect();
            let mut merged = LatencyHistogram::from_samples(&sa);
            merged.merge(&LatencyHistogram::from_samples(&sb));
            let pooled_samples: Vec<Seconds> = sa.iter().chain(&sb).copied().collect();
            let pooled = LatencyHistogram::from_samples(&pooled_samples);
            prop_assert_eq!(merged.count(), pooled.count());
            prop_assert_eq!(merged.min(), pooled.min());
            prop_assert_eq!(merged.max(), pooled.max());
            for q in [0.1, 0.5, 0.9, 0.99, 1.0] {
                prop_assert_eq!(merged.percentile(q), pooled.percentile(q));
            }
            let (s, p) = (merged.sum().get(), pooled.sum().get());
            prop_assert!((s - p).abs() <= 1e-9 * p.max(1.0));
        }
    }
}
