//! Tensor-parallel synchronization strategies and their costs (Fig. 7).

use core::fmt;

use ador_units::{Bandwidth, Bytes, Seconds};
use serde::{Deserialize, Serialize};

/// How tensor-parallel devices (or cores) synchronize activations between
/// consecutive GEMMs.
///
/// Costs are expressed for one *transformer sub-block* — a pair of dependent
/// GEMMs (e.g. up-projection then down-projection), which is the unit
/// Megatron fuses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyncStrategy {
    /// Each device computes a full-precision *final* slice of the output and
    /// gathers the other slices: two syncs per block, each moving
    /// `msg·(n−1)/n` per device. Volume is ~constant in `n`, and the small
    /// final sums pipeline behind compute (Fig. 6d).
    AllGather,
    /// Each device holds a *partial sum of the entire output* and exchanges
    /// it: two syncs per block, each moving `msg·(n−1)` per device, plus a
    /// trailing accumulation that cannot be overlapped.
    AllReduce,
    /// Megatron-LM's column-then-row parallel fusion: a single all-reduce
    /// per block. Half the sync points of [`SyncStrategy::AllGather`], but
    /// the volume still scales with `n`.
    Megatron,
}

impl SyncStrategy {
    /// All strategies, in the order the paper plots them.
    pub fn all() -> [SyncStrategy; 3] {
        [
            SyncStrategy::AllGather,
            SyncStrategy::AllReduce,
            SyncStrategy::Megatron,
        ]
    }

    /// Synchronization points per two-GEMM block.
    pub fn sync_points(&self) -> usize {
        match self {
            SyncStrategy::AllGather | SyncStrategy::AllReduce => 2,
            SyncStrategy::Megatron => 1,
        }
    }

    /// Whether the strategy's wire traffic can pipeline behind compute
    /// (Fig. 6d: all-gather ships final sums as they emerge; all-reduce
    /// must wait for complete partial sums and then accumulate).
    pub fn overlappable(&self) -> bool {
        matches!(self, SyncStrategy::AllGather)
    }

    /// Bytes each device moves for **one** sync of an activation message of
    /// `msg` bytes across `n` participants.
    pub fn bytes_per_sync(&self, n: usize, msg: Bytes) -> Bytes {
        assert!(n > 0, "collective needs at least one participant");
        if n == 1 {
            return Bytes::ZERO;
        }
        match self {
            SyncStrategy::AllGather => msg * ((n - 1) as f64 / n as f64),
            SyncStrategy::AllReduce | SyncStrategy::Megatron => msg * (n - 1) as u64,
        }
    }

    /// Total cost of one two-GEMM block: [`Self::sync_points`] syncs of
    /// [`Self::bytes_per_sync`].
    pub fn block_cost(&self, n: usize, msg: Bytes) -> CollectiveCost {
        CollectiveCost {
            strategy: *self,
            participants: n,
            bytes_per_device: self.bytes_per_sync(n, msg) * self.sync_points() as u64,
            sync_points: self.sync_points(),
        }
    }
}

impl fmt::Display for SyncStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SyncStrategy::AllGather => "all-gather",
            SyncStrategy::AllReduce => "all-reduce",
            SyncStrategy::Megatron => "megatron",
        };
        f.write_str(s)
    }
}

/// Wire cost of one block's synchronization (C-INTERMEDIATE: the per-device
/// byte count is the quantity Fig. 7c plots).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollectiveCost {
    /// The strategy that produced this cost.
    pub strategy: SyncStrategy,
    /// Participant count.
    pub participants: usize,
    /// Bytes moved per device for the whole block.
    pub bytes_per_device: Bytes,
    /// Number of serialized sync points.
    pub sync_points: usize,
}

impl CollectiveCost {
    /// Pure wire time on a link of `bandwidth` (no overlap, no per-sync
    /// latency).
    pub fn wire_time(&self, bandwidth: Bandwidth) -> Seconds {
        self.bytes_per_device / bandwidth
    }

    /// Wire time plus `per_sync_latency` for each serialized sync point.
    pub fn total_time(&self, bandwidth: Bandwidth, per_sync_latency: Seconds) -> Seconds {
        self.wire_time(bandwidth) + per_sync_latency * self.sync_points as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const MSG: Bytes = Bytes::new(8 * 1024 * 1024);

    #[test]
    fn single_device_is_free() {
        for s in SyncStrategy::all() {
            assert_eq!(s.block_cost(1, MSG).bytes_per_device, Bytes::ZERO);
        }
    }

    #[test]
    fn fig7c_allgather_volume_is_flat() {
        // Per-device all-gather volume approaches msg and never exceeds it.
        let v2 = SyncStrategy::AllGather.bytes_per_sync(2, MSG);
        let v16 = SyncStrategy::AllGather.bytes_per_sync(16, MSG);
        assert!(v16 <= MSG);
        assert!(v16.get() as f64 / v2.get() as f64 <= 2.0);
    }

    #[test]
    fn fig7c_allreduce_volume_scales_linearly() {
        let v2 = SyncStrategy::AllReduce.bytes_per_sync(2, MSG);
        let v16 = SyncStrategy::AllReduce.bytes_per_sync(16, MSG);
        assert_eq!(v16.get(), 15 * v2.get());
    }

    #[test]
    fn megatron_wins_at_two_devices_by_sync_points() {
        // Equal bytes at n = 2, but half the serialized sync points — the
        // paper's "Megatron is more efficient with two devices".
        let ag = SyncStrategy::AllGather.block_cost(2, MSG);
        let mg = SyncStrategy::Megatron.block_cost(2, MSG);
        assert_eq!(ag.bytes_per_device, mg.bytes_per_device);
        assert!(mg.sync_points < ag.sync_points);
        let link = Bandwidth::from_gbps(64.0);
        let lat = Seconds::from_micros(5.0);
        assert!(mg.total_time(link, lat) < ag.total_time(link, lat));
    }

    #[test]
    fn allgather_wins_at_four_or_more() {
        // Paper §V-C: "all-gather scales better with four or more devices".
        let link = Bandwidth::from_gbps(64.0);
        let lat = Seconds::from_micros(5.0);
        for n in [4, 8, 16] {
            let ag = SyncStrategy::AllGather
                .block_cost(n, MSG)
                .total_time(link, lat);
            let mg = SyncStrategy::Megatron
                .block_cost(n, MSG)
                .total_time(link, lat);
            let ar = SyncStrategy::AllReduce
                .block_cost(n, MSG)
                .total_time(link, lat);
            assert!(ag < mg && mg < ar, "n={n}");
        }
    }

    #[test]
    fn only_allgather_overlaps() {
        assert!(SyncStrategy::AllGather.overlappable());
        assert!(!SyncStrategy::AllReduce.overlappable());
        assert!(!SyncStrategy::Megatron.overlappable());
    }

    #[test]
    fn display_names() {
        assert_eq!(format!("{}", SyncStrategy::Megatron), "megatron");
    }

    proptest! {
        #[test]
        fn allgather_cheapest_in_bytes(n in 2usize..64, mib in 1u64..256) {
            let msg = Bytes::from_mib(mib);
            let ag = SyncStrategy::AllGather.block_cost(n, msg).bytes_per_device;
            let mg = SyncStrategy::Megatron.block_cost(n, msg).bytes_per_device;
            let ar = SyncStrategy::AllReduce.block_cost(n, msg).bytes_per_device;
            prop_assert!(ag <= mg);
            prop_assert!(mg <= ar);
        }

        #[test]
        fn wire_time_scales_inverse_bandwidth(n in 2usize..32, mib in 1u64..64, gbps in 1.0f64..600.0) {
            let cost = SyncStrategy::AllReduce.block_cost(n, Bytes::from_mib(mib));
            let slow = cost.wire_time(Bandwidth::from_gbps(gbps));
            let fast = cost.wire_time(Bandwidth::from_gbps(gbps * 2.0));
            prop_assert!((slow.get() / fast.get() - 2.0).abs() < 1e-6);
        }
    }
}
