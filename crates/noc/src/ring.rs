//! The on-chip ring NoC connecting ADOR cores (paper Fig. 6a).

use ador_units::{Bandwidth, Bytes, Seconds};
use serde::{Deserialize, Serialize};

/// A unidirectional ring of `nodes` cores with `link_bandwidth` per hop.
///
/// The latency-oriented dataflow (Fig. 6c) has every core compute a slice of
/// the output and all-gather the slices around the ring; the
/// throughput-oriented dataflow (Fig. 6b) broadcasts weights instead.
///
/// # Examples
///
/// ```
/// use ador_noc::RingNoc;
/// use ador_units::{Bandwidth, Bytes};
///
/// let ring = RingNoc::new(32, Bandwidth::from_gbps(256.0));
/// let t = ring.all_gather_time(Bytes::from_mib(1));
/// assert!(t.as_micros() < 10.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RingNoc {
    nodes: usize,
    link_bandwidth: Bandwidth,
    hop_latency: Seconds,
}

impl RingNoc {
    /// Creates a ring of `nodes` cores with `link_bandwidth` per hop and a
    /// default 20 ns router hop latency.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(nodes: usize, link_bandwidth: Bandwidth) -> Self {
        assert!(nodes > 0, "ring must have at least one node");
        Self {
            nodes,
            link_bandwidth,
            hop_latency: Seconds::new(20e-9),
        }
    }

    /// Overrides the per-hop router latency.
    pub fn with_hop_latency(mut self, latency: Seconds) -> Self {
        self.hop_latency = latency;
        self
    }

    /// Node count.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Per-hop link bandwidth.
    pub fn link_bandwidth(&self) -> Bandwidth {
        self.link_bandwidth
    }

    /// Time to all-gather a message of `total_bytes` (concatenation of all
    /// cores' slices): `nodes − 1` steps each moving one slice per hop.
    pub fn all_gather_time(&self, total_bytes: Bytes) -> Seconds {
        if self.nodes == 1 {
            return Seconds::ZERO;
        }
        let slice = total_bytes * (1.0 / self.nodes as f64);
        let per_step = slice / self.link_bandwidth + self.hop_latency;
        per_step * (self.nodes - 1) as f64
    }

    /// Time to broadcast `bytes` from one DRAM-adjacent core to all cores
    /// (pipelined store-and-forward around the ring: one full transfer plus
    /// the fill hops).
    pub fn broadcast_time(&self, bytes: Bytes) -> Seconds {
        if self.nodes == 1 {
            return Seconds::ZERO;
        }
        bytes / self.link_bandwidth + self.hop_latency * (self.nodes - 1) as f64
    }

    /// Time for every core to push `bytes_per_node` one hop to a neighbour
    /// (the systolic hand-off pattern).
    pub fn neighbor_shift_time(&self, bytes_per_node: Bytes) -> Seconds {
        bytes_per_node / self.link_bandwidth + self.hop_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_node_is_free() {
        let ring = RingNoc::new(1, Bandwidth::from_gbps(100.0));
        assert_eq!(ring.all_gather_time(Bytes::from_mib(64)), Seconds::ZERO);
        assert_eq!(ring.broadcast_time(Bytes::from_mib(64)), Seconds::ZERO);
    }

    #[test]
    fn all_gather_approaches_one_message_time() {
        // (n-1)/n of the message crosses each link: for large n the ring
        // all-gather costs about one full message transfer.
        let ring = RingNoc::new(64, Bandwidth::from_gbps(256.0)).with_hop_latency(Seconds::ZERO);
        let msg = Bytes::from_mib(8);
        let t = ring.all_gather_time(msg);
        let full = msg / ring.link_bandwidth();
        let ratio = t.get() / full.get();
        assert!((0.97..1.0).contains(&ratio), "{ratio}");
    }

    #[test]
    fn hop_latency_accumulates() {
        let fast = RingNoc::new(32, Bandwidth::from_gbps(256.0)).with_hop_latency(Seconds::ZERO);
        let slow = RingNoc::new(32, Bandwidth::from_gbps(256.0))
            .with_hop_latency(Seconds::from_micros(1.0));
        let msg = Bytes::from_kib(1);
        let diff = slow.all_gather_time(msg) - fast.all_gather_time(msg);
        assert!((diff.as_micros() - 31.0).abs() < 1e-6);
    }

    proptest! {
        #[test]
        fn broadcast_no_cheaper_than_wire(n in 2usize..128, mib in 1u64..128, gbps in 1.0f64..1000.0) {
            let ring = RingNoc::new(n, Bandwidth::from_gbps(gbps));
            let bytes = Bytes::from_mib(mib);
            let wire = bytes / ring.link_bandwidth();
            prop_assert!(ring.broadcast_time(bytes) >= wire);
        }

        #[test]
        fn all_gather_monotone_in_bytes(n in 2usize..64, a in 1u64..64, b in 1u64..64) {
            let ring = RingNoc::new(n, Bandwidth::from_gbps(128.0));
            let (lo, hi) = (a.min(b), a.max(b));
            prop_assert!(
                ring.all_gather_time(Bytes::from_mib(lo)) <= ring.all_gather_time(Bytes::from_mib(hi))
            );
        }
    }
}
