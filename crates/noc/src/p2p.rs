//! Device-to-device links (paper §V-C: PCIe-4 ×16 or InfiniBand suffices
//! for ADOR; NVLink-class links are not required).

use core::fmt;

use ador_units::{Bandwidth, Bytes, Seconds};
use serde::{Deserialize, Serialize};

/// A point-to-point inter-device link.
///
/// # Examples
///
/// ```
/// use ador_noc::P2pLink;
/// use ador_units::Bytes;
///
/// let pcie = P2pLink::pcie4_x16();
/// let nvlink = P2pLink::nvlink4();
/// assert!(pcie.transfer_time(Bytes::from_mib(64)) > nvlink.transfer_time(Bytes::from_mib(64)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct P2pLink {
    bandwidth: Bandwidth,
    latency: Seconds,
}

impl P2pLink {
    /// Creates a link with the given bandwidth and a default 2 µs
    /// end-to-end latency.
    pub fn new(bandwidth: Bandwidth) -> Self {
        Self {
            bandwidth,
            latency: Seconds::from_micros(2.0),
        }
    }

    /// Overrides the per-transfer latency.
    pub fn with_latency(mut self, latency: Seconds) -> Self {
        self.latency = latency;
        self
    }

    /// PCIe 4.0 ×16: ~32 GB/s per direction — the paper's sufficiency
    /// example.
    pub fn pcie4_x16() -> Self {
        Self::new(Bandwidth::from_gbps(32.0))
    }

    /// PCIe 5.0 ×16: ~64 GB/s (the Table III ADOR design point).
    pub fn pcie5_x16() -> Self {
        Self::new(Bandwidth::from_gbps(64.0))
    }

    /// NVLink 4 class: 900 GB/s aggregate (H100).
    pub fn nvlink4() -> Self {
        Self::new(Bandwidth::from_gbps(900.0)).with_latency(Seconds::from_micros(1.0))
    }

    /// InfiniBand NDR class: 50 GB/s.
    pub fn infiniband_ndr() -> Self {
        Self::new(Bandwidth::from_gbps(50.0)).with_latency(Seconds::from_micros(3.0))
    }

    /// Link bandwidth.
    pub fn bandwidth(&self) -> Bandwidth {
        self.bandwidth
    }

    /// Per-transfer latency.
    pub fn latency(&self) -> Seconds {
        self.latency
    }

    /// Time to move `bytes` once across the link.
    pub fn transfer_time(&self, bytes: Bytes) -> Seconds {
        self.latency + bytes / self.bandwidth
    }
}

impl fmt::Display for P2pLink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P2P {} ({} lat)", self.bandwidth, self.latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn presets_are_ordered() {
        assert!(P2pLink::pcie4_x16().bandwidth() < P2pLink::pcie5_x16().bandwidth());
        assert!(P2pLink::pcie5_x16().bandwidth() < P2pLink::nvlink4().bandwidth());
    }

    #[test]
    fn latency_floors_small_transfers() {
        let link = P2pLink::pcie4_x16();
        let tiny = link.transfer_time(Bytes::new(64));
        assert!(tiny >= link.latency());
    }

    proptest! {
        #[test]
        fn transfer_monotone(a in 0u64..1 << 30, b in 0u64..1 << 30) {
            let link = P2pLink::pcie5_x16();
            let (lo, hi) = (a.min(b), a.max(b));
            prop_assert!(link.transfer_time(Bytes::new(lo)) <= link.transfer_time(Bytes::new(hi)));
        }
    }
}
