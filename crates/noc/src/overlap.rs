//! Computation–communication overlap (paper Fig. 6d and §V-C).
//!
//! The ADOR dataflow pipelines all-gather traffic behind GEMV compute: as
//! each final sum emerges from the MAC tree it is shipped while the next
//! one computes. The exposed synchronization time is therefore whatever the
//! wire cannot hide under the compute window — and solving that inequality
//! for bandwidth gives the *minimum* NoC/P2P spec, which is exactly how the
//! paper derives its "32 GB/s is sufficient" claim.

use ador_units::{Bandwidth, Bytes, Seconds, Utilization};
use serde::{Deserialize, Serialize};

/// Degree to which wire time hides under a compute window.
///
/// # Examples
///
/// ```
/// use ador_noc::OverlapModel;
/// use ador_units::Seconds;
///
/// let pipelined = OverlapModel::pipelined();
/// let comm = Seconds::from_millis(1.0);
/// let compute = Seconds::from_millis(3.0);
/// // Fully hidden: the step costs only the compute window.
/// assert_eq!(pipelined.step_time(compute, comm), compute);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverlapModel {
    /// Fraction of the compute window usable for hiding wire traffic.
    pub hiding: Utilization,
}

impl OverlapModel {
    /// Full pipelining (all-gather of final sums, Fig. 6d top).
    pub fn pipelined() -> Self {
        Self {
            hiding: Utilization::new(0.95),
        }
    }

    /// No overlap at all (all-reduce accumulation bubbles, Fig. 6d bottom).
    pub fn serialized() -> Self {
        Self {
            hiding: Utilization::IDLE,
        }
    }

    /// A custom hiding fraction.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn new(fraction: f64) -> Self {
        Self {
            hiding: Utilization::new(fraction),
        }
    }

    /// Communication time left exposed after hiding under `compute`.
    pub fn exposed(&self, compute: Seconds, comm: Seconds) -> Seconds {
        let hidden = compute * self.hiding.get();
        if comm <= hidden {
            Seconds::ZERO
        } else {
            comm - hidden
        }
    }

    /// Total step time: compute plus exposed communication.
    pub fn step_time(&self, compute: Seconds, comm: Seconds) -> Seconds {
        compute + self.exposed(compute, comm)
    }
}

impl Default for OverlapModel {
    fn default() -> Self {
        Self::pipelined()
    }
}

/// The smallest link bandwidth that fully hides `sync_bytes` of traffic
/// under a `compute` window (paper §V-C: "determine the minimum bandwidth
/// required to ensure that computation and communication overlap
/// effectively").
///
/// # Panics
///
/// Panics if the compute window or hiding fraction is zero while traffic is
/// non-zero (no finite bandwidth can hide traffic under an empty window).
///
/// # Examples
///
/// ```
/// use ador_noc::{minimum_overlap_bandwidth, OverlapModel};
/// use ador_units::{Bytes, Seconds};
///
/// let bw = minimum_overlap_bandwidth(
///     Bytes::from_mib(2),
///     Seconds::from_micros(100.0),
///     OverlapModel::pipelined(),
/// );
/// assert!(bw.as_gbps() > 20.0 && bw.as_gbps() < 25.0);
/// ```
pub fn minimum_overlap_bandwidth(
    sync_bytes: Bytes,
    compute: Seconds,
    overlap: OverlapModel,
) -> Bandwidth {
    if sync_bytes.is_zero() {
        return Bandwidth::from_bytes_per_sec(0.0);
    }
    let window = compute * overlap.hiding.get();
    assert!(
        window.get() > 0.0,
        "cannot hide {sync_bytes} of traffic under an empty compute window"
    );
    Bandwidth::from_bytes_per_sec(sync_bytes.get() as f64 / window.get())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn serialized_exposes_everything() {
        let m = OverlapModel::serialized();
        let comm = Seconds::from_millis(2.0);
        assert_eq!(m.exposed(Seconds::from_millis(10.0), comm), comm);
    }

    #[test]
    fn pipelined_hides_short_comm() {
        let m = OverlapModel::pipelined();
        assert_eq!(
            m.exposed(Seconds::from_millis(10.0), Seconds::from_millis(2.0)),
            Seconds::ZERO
        );
    }

    #[test]
    fn partial_exposure() {
        let m = OverlapModel::new(0.5);
        let exposed = m.exposed(Seconds::from_millis(10.0), Seconds::from_millis(7.0));
        assert!((exposed.as_millis() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn minimum_bandwidth_just_hides() {
        let bytes = Bytes::from_mib(4);
        let compute = Seconds::from_micros(200.0);
        let m = OverlapModel::pipelined();
        let bw = minimum_overlap_bandwidth(bytes, compute, m);
        let comm = bytes / bw;
        assert_eq!(m.exposed(compute, comm), Seconds::ZERO);
        // 1 % less bandwidth exposes some traffic.
        let comm_slow = bytes / (bw * 0.99);
        assert!(m.exposed(compute, comm_slow) > Seconds::ZERO);
    }

    #[test]
    fn zero_traffic_needs_no_bandwidth() {
        let bw = minimum_overlap_bandwidth(
            Bytes::ZERO,
            Seconds::from_micros(1.0),
            OverlapModel::pipelined(),
        );
        assert!(bw.is_zero());
    }

    proptest! {
        #[test]
        fn step_time_bounds(comp in 0.0f64..1.0, comm in 0.0f64..1.0, h in 0.0f64..=1.0) {
            let m = OverlapModel::new(h);
            let t = m.step_time(Seconds::new(comp), Seconds::new(comm));
            // Never better than pure compute, never worse than full serialization.
            prop_assert!(t.get() >= comp - 1e-12);
            prop_assert!(t.get() <= comp + comm + 1e-12);
        }

        #[test]
        fn more_hiding_never_hurts(comp in 0.001f64..1.0, comm in 0.0f64..1.0, h in 0.0f64..0.99) {
            let less = OverlapModel::new(h).step_time(Seconds::new(comp), Seconds::new(comm));
            let more = OverlapModel::new(h + 0.01).step_time(Seconds::new(comp), Seconds::new(comm));
            prop_assert!(more <= less);
        }
    }
}
