//! Interconnect models for ADOR: ring NoC, P2P links, tensor-parallel
//! collectives, and the computation–communication overlap analysis
//! (paper §IV-C, §IV-D, Fig. 6d, Fig. 7, Fig. 13).
//!
//! The paper's core interconnect claims, all reproduced here:
//!
//! * **all-gather** exchanges small final sums whose per-device volume is
//!   roughly constant in device count, and it pipelines behind compute;
//! * **all-reduce** exchanges partial sums of the *whole* output, so its
//!   volume grows linearly with device count and the trailing accumulation
//!   cannot be hidden;
//! * **Megatron** halves the number of sync points by fusing a
//!   column-parallel and a row-parallel GEMM around one all-reduce — best at
//!   two devices, overtaken by all-gather at four or more;
//! * a modest P2P link (~32 GB/s, PCIe-4 ×16 class) suffices to overlap
//!   communication for ADOR-class designs — NVLink-class bandwidth is not
//!   required.
//!
//! # Examples
//!
//! ```
//! use ador_noc::{SyncStrategy, CollectiveCost};
//! use ador_units::{Bandwidth, Bytes};
//!
//! let msg = Bytes::from_mib(8); // one layer's activations
//! let link = Bandwidth::from_gbps(64.0);
//! let ag = SyncStrategy::AllGather.block_cost(16, msg);
//! let ar = SyncStrategy::AllReduce.block_cost(16, msg);
//! assert!(ag.bytes_per_device < ar.bytes_per_device);
//! assert!(ag.wire_time(link) < ar.wire_time(link));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod collective;
mod overlap;
mod p2p;
mod ring;

pub use collective::{CollectiveCost, SyncStrategy};
pub use overlap::{minimum_overlap_bandwidth, OverlapModel};
pub use p2p::P2pLink;
pub use ring::RingNoc;
