//! The fleet simulator: N engine replicas behind a router, driven by a
//! discrete-event core on one global clock.
//!
//! The default driver ([`DriveMode::EventDriven`]) keeps a binary-heap
//! event queue over the two event kinds a fleet has — request arrivals
//! and replica-ready instants ([`Engine::next_event_time`]) — and always
//! processes the earliest. A replica is stepped only when it actually has
//! work scheduled before the next routing decision, so idle replicas cost
//! nothing per arrival, and every routing decision and metric is stamped
//! from the single global clock. The previous lockstep driver
//! ([`DriveMode::Lockstep`]), which swept all N replicas up to each
//! arrival and let per-replica clocks diverge during the drain, is kept
//! as the regression oracle: both drivers produce identical per-request
//! outcomes (pinned by `tests/cluster_serving.rs`).

use std::cmp::{Ordering, Reverse};
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

use ador_hw::Architecture;
use ador_model::ModelConfig;
use ador_perf::Deployment;
use ador_serving::{
    Engine, EngineCounters, QosReport, Request, RequestOutcome, ServingSim, SimConfig, SimError,
};
use ador_telemetry::{
    goodput_series, AttributionReport, Event, EventKind, TelemetryConfig, TimeSeries,
};
use ador_units::{conv, Seconds};
use serde::Serialize;

use crate::report::{imbalance, FleetAttribution, FleetTelemetry};
use crate::{
    ClusterRequest, FleetReport, FleetSpec, KvLink, PoolRole, ReplicaSnapshot, Router,
    RouterPolicy, TenantClass, TenantMix, TenantQos, Topology,
};

/// How the fleet driver advances its replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub enum DriveMode {
    /// The discrete-event core (default): a binary-heap event queue over
    /// arrivals and replica-ready instants. Each replica advances only
    /// when it has work scheduled before the next event, so per-arrival
    /// cost scales with the *busy* replicas, not the fleet size.
    #[default]
    EventDriven,
    /// The original lockstep driver, kept as the regression oracle: every
    /// replica is swept up to each arrival instant, and after the last
    /// arrival the fleet drains round-robin, one iteration per replica
    /// per round. O(replicas) work per arrival even when most replicas
    /// are idle. Produces per-request outcomes identical to
    /// [`DriveMode::EventDriven`].
    Lockstep,
}

impl std::fmt::Display for DriveMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DriveMode::EventDriven => "event-driven",
            DriveMode::Lockstep => "lockstep",
        })
    }
}

/// Fleet-level configuration: replica count, routing policy, admission
/// control, and the per-replica engine knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ClusterConfig {
    /// Engine replicas in the fleet.
    pub replicas: usize,
    /// The routing policy at the front door.
    pub policy: RouterPolicy,
    /// Admission control: shed a request when its chosen replica already
    /// has this many requests waiting. `None` admits everything.
    pub queue_cap: Option<usize>,
    /// Per-replica engine knobs (batch cap, prefill chunk, KV fraction,
    /// scheduler policy). The `arrival_rate`, `requests` and `seed`
    /// fields are unused — the cluster's [`TenantMix`] owns the workload.
    pub engine: SimConfig,
    /// How the driver advances replicas. The event-driven core and the
    /// lockstep oracle produce identical reports; the knob exists for
    /// regression testing and the `bench_cluster` wall-clock comparison.
    pub drive: DriveMode,
    /// How the fleet divides request lifecycles across replicas
    /// ([`Topology::Aggregated`] by default; see
    /// [`ClusterConfig::with_disaggregation`]).
    pub topology: Topology,
    /// The decode-pool routing policy of a disaggregated fleet (ignored
    /// under [`Topology::Aggregated`]). Defaults to
    /// [`RouterPolicy::LeastKvLoad`]: decode replicas are KV-residency
    /// bound, so token demand — not request count — is the scarce
    /// resource worth balancing there.
    pub decode_policy: RouterPolicy,
}

impl ClusterConfig {
    /// Creates a config with `replicas` engines behind `policy`, 128-slot
    /// replicas and no admission control.
    pub fn new(replicas: usize, policy: RouterPolicy) -> Self {
        Self {
            replicas,
            policy,
            queue_cap: None,
            engine: SimConfig::new(1.0, 128),
            drive: DriveMode::EventDriven,
            topology: Topology::Aggregated,
            decode_policy: RouterPolicy::LeastKvLoad,
        }
    }

    /// Switches the fleet to prefill/decode disaggregation over `link`:
    /// fresh prompts are routed within the prefill pool under
    /// [`ClusterConfig::policy`]; each finished context is shipped over
    /// `link` (latency plus tokens × KV-bytes-per-token at link
    /// bandwidth, charged on the event clock) and decodes on a replica
    /// chosen by [`ClusterConfig::decode_policy`].
    pub fn with_disaggregation(mut self, link: KvLink) -> Self {
        self.topology = Topology::Disaggregated(link);
        self
    }

    /// Sets the decode-pool routing policy of a disaggregated fleet.
    pub fn with_decode_policy(mut self, policy: RouterPolicy) -> Self {
        self.decode_policy = policy;
        self
    }

    /// Sets the per-replica engine configuration.
    pub fn with_engine(mut self, engine: SimConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Selects the fleet driver (event-driven by default).
    pub fn with_drive_mode(mut self, drive: DriveMode) -> Self {
        self.drive = drive;
        self
    }

    /// Sets the admission-control queue cap.
    pub fn with_queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = Some(cap);
        self
    }

    /// Enables or disables prefix-aware KV reuse on every replica engine
    /// (shorthand for setting
    /// [`SimConfig::prefix_caching`](ador_serving::SimConfig::prefix_caching)
    /// on the embedded engine config). Reuse is strictly per-replica, so
    /// pair it with [`RouterPolicy::CacheAffinity`] to keep a session's
    /// turns where its prefix lives.
    pub fn with_prefix_caching(mut self, enabled: bool) -> Self {
        self.engine.prefix_caching = enabled;
        self
    }

    /// Configures speculative decoding on every replica engine (shorthand
    /// for setting
    /// [`SimConfig::speculation`](ador_serving::SimConfig::speculation)
    /// on the embedded engine config). Per-request acceptance profiles
    /// come from each [`TenantClass::accept_rate`]; the `SloAdaptive`
    /// policy reads each request's class SLO, both stamped onto requests
    /// by [`TenantMix::generate`](crate::TenantMix::generate).
    pub fn with_speculation(mut self, speculation: ador_spec::SpeculationConfig) -> Self {
        self.engine.speculation = speculation;
        self
    }

    /// Configures telemetry on every replica engine (shorthand for
    /// setting [`SimConfig::telemetry`](ador_serving::SimConfig) on the
    /// embedded engine config). With anything enabled, the drained
    /// artifacts land on [`FleetReport::telemetry`]; shed requests are
    /// additionally stamped with [`EventKind::Shed`](ador_telemetry::EventKind)
    /// in the sink of the replica the router chose for them. The default
    /// ([`TelemetryConfig::OFF`]) records nothing and leaves the run
    /// bit-identical to an untraced fleet.
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.engine.telemetry = telemetry;
        self
    }
}

/// A replica-ready event: the instant one replica next has work, on the
/// global fleet clock. Min-heap ordered via [`Reverse`]; ties break
/// toward the lowest replica index (engines are independent, so tie
/// order cannot affect outcomes — the fixed order just keeps the event
/// trace deterministic).
#[derive(Debug, Clone, Copy, PartialEq)]
struct ReadyAt {
    time: Seconds,
    replica: usize,
}

impl Eq for ReadyAt {}

impl PartialOrd for ReadyAt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ReadyAt {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time
            .partial_cmp(&other.time)
            // ador-lint: allow(panic) — invariant: event times are finite sums of latencies
            .expect("event times are never NaN")
            .then(self.replica.cmp(&other.replica))
    }
}

/// A KV-context transfer in flight between pools: the decode-side
/// continuation request, keyed by the instant its context finishes
/// landing (prefill completion + link latency + serialization). Min-heap
/// ordered via [`Reverse`]; ties break by request id, so delivery order
/// is part of the pinned trace.
#[derive(Debug, Clone, Copy)]
struct TransferAt {
    time: Seconds,
    request: Request,
}

impl PartialEq for TransferAt {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.request.id == other.request.id
    }
}

impl Eq for TransferAt {}

impl PartialOrd for TransferAt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TransferAt {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time
            .partial_cmp(&other.time)
            // ador-lint: allow(panic) — invariant: maturities are finite sums of latencies
            .expect("transfer times are never NaN")
            .then(self.request.id.cmp(&other.request.id))
    }
}

/// A fleet of engine replicas behind a [`Router`].
///
/// The default driver is a discrete-event core on one global clock: a
/// binary-heap event queue holds each busy replica keyed by the instant
/// it next has work ([`Engine::next_event_time`]), and the sorted arrival
/// stream supplies the other event kind. [`ClusterSim::advance`] always
/// processes the earliest event — it either sweeps the soonest-ready
/// replica up to the next arrival, or (when no replica has work strictly
/// before the next arrival) routes that arrival from cached load
/// snapshots that are refreshed only when a replica steps or receives a
/// request. Idle
/// replicas are never touched, so per-event cost scales with the busy
/// part of the fleet; the drain after the last arrival is the same loop
/// with no arrivals left, on the same clock.
///
/// [`DriveMode::Lockstep`] selects the original sweep-all-replicas
/// driver, retained as a regression oracle — both drivers produce
/// identical per-request outcomes and fleet reports.
///
/// [`ClusterSim::run`] does all of this in one call; the incremental
/// [`ClusterSim::submit_stream`] / [`ClusterSim::advance`] /
/// [`ClusterSim::finish`] surface exists so tests and tools can observe
/// fleet state (e.g. the conservation invariant
/// `submitted == completed + rejected + in_flight`) between events.
///
/// # Examples
///
/// ```
/// use ador_cluster::{ClusterConfig, ClusterSim, RouterPolicy, TenantClass, TenantMix};
/// use ador_perf::Deployment;
///
/// let arch = ador_baselines::ador_table3();
/// let model = ador_model::presets::llama3_8b();
/// let mix = TenantMix::new(vec![
///     TenantClass::chatbot(4.0),
///     TenantClass::code_completion(2.0),
/// ]);
/// let cfg = ClusterConfig::new(2, RouterPolicy::JoinShortestQueue);
/// let report = ClusterSim::new(&arch, &model, Deployment::single_device(), cfg)?
///     .run(&mix, 60, 7)?;
/// assert_eq!(report.completed, 60);
/// assert_eq!(report.tenants.len(), 2);
/// # Ok::<(), ador_serving::SimError>(())
/// ```
pub struct ClusterSim<'a> {
    engines: Vec<Engine<'a>>,
    router: Router,
    cfg: ClusterConfig,
    stream: VecDeque<ClusterRequest>,
    classes: Vec<TenantClass>,
    offered: usize,
    /// Tenant tag per request id (`BTreeMap` by the determinism
    /// contract — see `ador-lint`; lookups are by exact id).
    tenant_of: BTreeMap<u64, usize>,
    submitted_per_tenant: Vec<usize>,
    rejected_per_tenant: Vec<usize>,
    assignments: Vec<(u64, Option<usize>)>,
    /// The global fleet clock: the latest event instant processed. Every
    /// routing decision is stamped at or after this time.
    clock: Seconds,
    /// The event queue of the discrete-event driver: busy replicas keyed
    /// by [`Engine::next_event_time`]. Entries are invalidated lazily —
    /// every state change pushes a fresh entry, and a popped entry whose
    /// key no longer matches its replica's live peek is discarded.
    ready: BinaryHeap<Reverse<ReadyAt>>,
    /// Cached per-replica load snapshots, refreshed only when a replica
    /// steps or receives a submission (its load state changes exactly
    /// then, and never merely by time passing).
    snapshots: Vec<ReplicaSnapshot>,
    /// Replica indices serving fresh prompts under disaggregation.
    prefill_pool: Vec<usize>,
    /// Replica indices serving transferred contexts under disaggregation.
    decode_pool: Vec<usize>,
    /// Decode-pool router (consulted only under disaggregation; it only
    /// ever sees the decode pool, so its policy state stays coherent).
    decode_router: Router,
    /// The KV interconnect — `Some` exactly under
    /// [`Topology::Disaggregated`], which is what switches the drivers
    /// onto the disaggregated round loop.
    link: Option<KvLink>,
    /// Full-model KV bytes per token (transfer serialization sizing).
    kv_bytes_per_token: u64,
    /// In-flight KV-context transfers, keyed by maturity. Tracked like
    /// admissions: a split request counts here between leaving its
    /// prefill replica and landing on its decode replica, so
    /// `submitted == completed + rejected + in_flight + in_transfer`
    /// holds at every [`ClusterSim::advance`] boundary.
    transfers: BinaryHeap<Reverse<TransferAt>>,
    /// Per-engine cursor into [`Engine::outcomes`]: completions before
    /// it are already classified (split bookkeeping done).
    seen_outcomes: Vec<usize>,
    /// Original requests of in-progress splits, by id (`BTreeMap` by the
    /// determinism contract — see `ador-lint`).
    origs: BTreeMap<u64, Request>,
    /// Completed prefill halves awaiting their decode half, by id.
    pending_stitch: BTreeMap<u64, RequestOutcome>,
    /// Fully stitched end-to-end outcomes (disaggregated runs only).
    stitched: Vec<RequestOutcome>,
    /// Requests finished end-to-end under disaggregation.
    finished: usize,
    /// Transfer-span telemetry lane (replica index + event), kept at
    /// fleet level rather than in engine sinks and time-sorted when the
    /// report is built.
    transfer_events: Vec<(usize, Event)>,
    /// KV-context transfers launched.
    kv_transfers: usize,
    /// Context tokens shipped across the link in total.
    kv_transferred_tokens: u64,
    /// The fleet's effective telemetry config. Per-replica configs may
    /// differ under [`ClusterSim::new_fleet`]; the first enabled one
    /// decides whether the report carries a telemetry block.
    telemetry_cfg: TelemetryConfig,
    /// Pool role per replica, index-aligned with `engines` (all
    /// `Unified` for aggregated fleets) — tags the per-replica telemetry
    /// artifacts so pools stay separable in the report.
    roles: Vec<PoolRole>,
}

impl<'a> ClusterSim<'a> {
    /// Builds a fleet of identical replicas.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyConfig`] for a zero replica count and
    /// propagates per-replica construction errors (model does not fit,
    /// no KV headroom, …).
    pub fn new(
        arch: &'a Architecture,
        model: &'a ModelConfig,
        deployment: Deployment,
        cfg: ClusterConfig,
    ) -> Result<Self, SimError> {
        if cfg.replicas == 0 {
            return Err(SimError::EmptyConfig);
        }
        let engines = (0..cfg.replicas)
            .map(|_| Ok(ServingSim::new(arch, model, deployment, cfg.engine)?.engine()))
            .collect::<Result<Vec<_>, SimError>>()?;
        let roles = vec![PoolRole::Unified; cfg.replicas];
        Self::assemble(engines, roles, model, cfg.engine.telemetry, cfg)
    }

    /// Builds a heterogeneous fleet from an explicit replica mix: each
    /// replica runs its own [`ReplicaSpec`](crate::ReplicaSpec) hardware
    /// and engine config, and under [`Topology::Disaggregated`] the
    /// specs' [`PoolRole`]s decide which pool each replica serves.
    /// `cfg.replicas` is ignored — the fleet's length wins.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyConfig`] for an empty fleet or a
    /// disaggregated topology whose prefill or decode pool is empty, and
    /// propagates per-replica construction errors.
    pub fn new_fleet(
        fleet: &'a FleetSpec,
        model: &'a ModelConfig,
        deployment: Deployment,
        mut cfg: ClusterConfig,
    ) -> Result<Self, SimError> {
        if fleet.is_empty() {
            return Err(SimError::EmptyConfig);
        }
        cfg.replicas = fleet.len();
        let engines = fleet
            .replicas
            .iter()
            .map(|spec| Ok(ServingSim::new(&spec.arch, model, deployment, spec.engine)?.engine()))
            .collect::<Result<Vec<_>, SimError>>()?;
        let roles: Vec<PoolRole> = fleet.replicas.iter().map(|spec| spec.role).collect();
        let telemetry_cfg = fleet
            .replicas
            .iter()
            .map(|spec| spec.engine.telemetry)
            .find(TelemetryConfig::enabled)
            .unwrap_or(cfg.engine.telemetry);
        Self::assemble(engines, roles, model, telemetry_cfg, cfg)
    }

    fn assemble(
        engines: Vec<Engine<'a>>,
        roles: Vec<PoolRole>,
        model: &ModelConfig,
        telemetry_cfg: TelemetryConfig,
        cfg: ClusterConfig,
    ) -> Result<Self, SimError> {
        let link = match cfg.topology {
            Topology::Aggregated => None,
            Topology::Disaggregated(link) => Some(link),
        };
        let prefill_pool: Vec<usize> = roles
            .iter()
            .enumerate()
            .filter(|(_, r)| **r != PoolRole::Decode)
            .map(|(i, _)| i)
            .collect();
        let decode_pool: Vec<usize> = roles
            .iter()
            .enumerate()
            .filter(|(_, r)| **r != PoolRole::Prefill)
            .map(|(i, _)| i)
            .collect();
        if link.is_some() && (prefill_pool.is_empty() || decode_pool.is_empty()) {
            return Err(SimError::EmptyConfig);
        }
        let snapshots = engines.iter().map(snapshot).collect();
        let replicas = engines.len();
        Ok(Self {
            engines,
            router: Router::new(cfg.policy),
            decode_router: Router::new(cfg.decode_policy),
            cfg,
            stream: VecDeque::new(),
            classes: Vec::new(),
            offered: 0,
            tenant_of: BTreeMap::new(),
            submitted_per_tenant: Vec::new(),
            rejected_per_tenant: Vec::new(),
            assignments: Vec::new(),
            clock: Seconds::ZERO,
            ready: BinaryHeap::new(),
            snapshots,
            prefill_pool,
            decode_pool,
            link,
            kv_bytes_per_token: model.kv_bytes_per_token().get(),
            transfers: BinaryHeap::new(),
            seen_outcomes: vec![0; replicas],
            origs: BTreeMap::new(),
            pending_stitch: BTreeMap::new(),
            stitched: Vec::new(),
            finished: 0,
            transfer_events: Vec::new(),
            kv_transfers: 0,
            kv_transferred_tokens: 0,
            telemetry_cfg,
            roles,
        })
    }

    /// Generates `count` requests from `mix` under `seed` and runs the
    /// fleet to completion.
    ///
    /// # Errors
    ///
    /// Propagates engine errors (see [`Engine::submit`] / [`Engine::step`]).
    pub fn run(self, mix: &TenantMix, count: usize, seed: u64) -> Result<FleetReport, SimError> {
        let stream = mix.generate(count, seed);
        self.run_stream(mix, stream)
    }

    /// Runs an explicit tagged request stream (a recorded trace, say) to
    /// completion. See [`ClusterSim::submit_stream`] for its requirements.
    ///
    /// # Errors
    ///
    /// Propagates engine errors (see [`Engine::submit`] / [`Engine::step`]).
    pub fn run_stream(
        mut self,
        mix: &TenantMix,
        stream: Vec<ClusterRequest>,
    ) -> Result<FleetReport, SimError> {
        self.submit_stream(mix, stream);
        while self.advance()? {}
        Ok(self.finish())
    }

    /// Loads a tagged request stream for incremental driving. The stream
    /// is sorted by arrival internally; request ids must be unique and
    /// tenant tags must index into `mix`'s classes.
    ///
    /// # Panics
    ///
    /// Panics on duplicate request ids, out-of-range tenant tags, or if a
    /// stream was already loaded.
    pub fn submit_stream(&mut self, mix: &TenantMix, mut stream: Vec<ClusterRequest>) {
        assert!(
            self.classes.is_empty() && self.stream.is_empty(),
            "a cluster runs one stream per lifetime"
        );
        self.classes = mix.classes().to_vec();
        self.submitted_per_tenant = vec![0; self.classes.len()];
        self.rejected_per_tenant = vec![0; self.classes.len()];
        stream.sort_by(|a, b| {
            a.request
                .arrival
                .partial_cmp(&b.request.arrival)
                // ador-lint: allow(panic) — invariant: arrivals are finite draws from the workload
                .expect("arrival times are never NaN")
        });
        for cr in &stream {
            assert!(
                cr.tenant < self.classes.len(),
                "tenant tag {} out of range for a {}-class mix",
                cr.tenant,
                self.classes.len()
            );
            assert!(
                !self.tenant_of.contains_key(&cr.request.id),
                "duplicate request id {}",
                cr.request.id
            );
            self.tenant_of.insert(cr.request.id, cr.tenant);
            self.submitted_per_tenant[cr.tenant] += 1;
        }
        self.offered = stream.len();
        self.stream = stream.into();
    }

    /// Advances the fleet by one event and returns `false` once fully
    /// drained.
    ///
    /// Under [`DriveMode::EventDriven`] one event is either a sweep of
    /// the soonest-ready replica up to the next arrival (its full drain
    /// once the stream is exhausted) or one routing decision — whichever
    /// is earliest on the global clock. Under
    /// [`DriveMode::Lockstep`] one event is one routed arrival (with every
    /// replica first swept up to the arrival instant) or one round-robin
    /// drain round. Both drivers preserve the conservation invariant
    /// `submitted == completed + rejected + in_flight` between calls and
    /// produce identical per-request outcomes.
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn advance(&mut self) -> Result<bool, SimError> {
        if self.link.is_some() {
            return self.advance_disagg();
        }
        match self.cfg.drive {
            DriveMode::EventDriven => self.advance_event(),
            DriveMode::Lockstep => self.advance_lockstep(),
        }
    }

    /// The next round horizon of a disaggregated fleet: the earliest of
    /// the next arrival, the next transfer maturity, and the *causality
    /// guard* — the earliest instant any prefill-pool replica could
    /// still discover a completion, plus the link latency. A completion
    /// discovered at `t ≥ e` spawns a transfer maturing at
    /// `≥ t + latency ≥ guard`, so nothing swept up to the horizon can
    /// ever be swept past an undelivered submission (this is why
    /// [`KvLink::latency`] must be strictly positive). `None` means no
    /// event can create a new submission anywhere — the fleet just
    /// drains.
    fn disagg_horizon(&self) -> Option<Seconds> {
        // ador-lint: allow(panic) — invariant: only the disaggregated driver calls this
        let link = self.link.expect("disaggregated driver");
        let arrival = self.stream.front().map(|cr| cr.request.arrival);
        let transfer = self.transfers.peek().map(|&Reverse(t)| t.time);
        let guard = self
            .prefill_pool
            .iter()
            .filter_map(|&i| self.engines[i].next_event_time())
            .reduce(Seconds::min)
            .map(|t| t + link.latency);
        [arrival, transfer, guard]
            .into_iter()
            .flatten()
            .reduce(Seconds::min)
    }

    /// One round of the disaggregated driver, identical under both drive
    /// modes: sweep every replica's work strictly before the round
    /// horizon, classify the completions that surfaced (launching
    /// transfers), then process the boundary events *at* the horizon —
    /// matured transfers first (heap order: maturity, then id), then
    /// arrivals. The horizon strictly increases round over round, and
    /// the two sweeps differ only in skipping replicas that provably
    /// have no work (for which a sweep is a no-op), so the drive modes
    /// stay bit-identical.
    fn advance_disagg(&mut self) -> Result<bool, SimError> {
        let Some(h) = self.disagg_horizon() else {
            // No arrivals, no in-flight transfers, no prefill-side work:
            // nothing can create a submission anywhere again. Drain the
            // remaining (decode-side) work and classify the stragglers.
            if self.engines.iter().all(|e| e.is_drained()) {
                return Ok(false);
            }
            for idx in 0..self.engines.len() {
                while !self.engines[idx].is_drained() {
                    self.engines[idx].step()?;
                }
                self.clock = self.clock.max(self.engines[idx].now());
                self.snapshots[idx] = snapshot(&self.engines[idx]);
            }
            self.scan_completions();
            return Ok(true);
        };
        match self.cfg.drive {
            DriveMode::EventDriven => {
                while let Some(ev) = self.peek_ready() {
                    if ev.time >= h {
                        break;
                    }
                    self.ready.pop();
                    self.engines[ev.replica].step_until(h)?;
                    self.clock = self.clock.max(self.engines[ev.replica].now());
                    self.snapshots[ev.replica] = snapshot(&self.engines[ev.replica]);
                    self.push_ready(ev.replica);
                }
            }
            DriveMode::Lockstep => {
                for idx in 0..self.engines.len() {
                    self.engines[idx].step_until(h)?;
                    self.clock = self.clock.max(self.engines[idx].now());
                    self.snapshots[idx] = snapshot(&self.engines[idx]);
                }
            }
        }
        self.scan_completions();
        while self.transfers.peek().is_some_and(|&Reverse(t)| t.time <= h) {
            // ador-lint: allow(panic) — invariant: the loop condition peeked the heap
            let Reverse(t) = self.transfers.pop().expect("peeked");
            self.deliver_transfer(t)?;
        }
        while self
            .stream
            .front()
            .is_some_and(|cr| cr.request.arrival <= h)
        {
            // ador-lint: allow(panic) — invariant: the loop condition peeked the stream front
            let cr = self.stream.pop_front().expect("peeked");
            self.clock = self.clock.max(cr.request.arrival);
            self.route_and_submit_disagg(cr)?;
        }
        Ok(true)
    }

    /// Classifies every newly completed engine outcome (replica index
    /// order, cursor per replica): prefill halves become in-flight
    /// transfers, decode halves are stitched with their stored prefill
    /// half into one end-to-end outcome, and unsplit single-output
    /// requests finish directly.
    fn scan_completions(&mut self) {
        for idx in 0..self.engines.len() {
            let fresh: Vec<RequestOutcome> =
                self.engines[idx].outcomes()[self.seen_outcomes[idx]..].to_vec();
            self.seen_outcomes[idx] += fresh.len();
            for o in fresh {
                if o.request.imported_context > 0 {
                    self.stitch(o);
                } else if self.origs.contains_key(&o.request.id) {
                    self.launch_transfer(idx, o);
                } else {
                    self.stitched.push(o);
                    self.finished += 1;
                }
            }
        }
    }

    /// A prefill half just completed on replica `src`: price the KV
    /// handoff (latency + context × bytes-per-token over the link) and
    /// schedule the decode-side continuation at its maturity.
    fn launch_transfer(&mut self, src: usize, prefill: RequestOutcome) {
        let orig = self.origs[&prefill.request.id];
        // ador-lint: allow(panic) — invariant: transfers only exist under disaggregation
        let link = self.link.expect("disaggregated driver");
        let done_at = orig.arrival + prefill.e2e;
        // The whole landed context moves: the prompt plus its first token.
        let ctx = orig.input_tokens + 1;
        let wire = Seconds::new(
            conv::f64_from_u64(self.kv_bytes_per_token) * conv::f64_from_usize(ctx)
                / link.bandwidth.as_bytes_per_sec(),
        );
        let maturity = done_at + link.latency + wire;
        let request = Request {
            id: orig.id,
            arrival: maturity,
            input_tokens: ctx,
            output_tokens: orig.output_tokens - 1,
            prefix_group: None,
            slo: orig.slo,
            accept_rate: orig.accept_rate,
            imported_context: orig.input_tokens,
        };
        self.kv_transfers += 1;
        self.kv_transferred_tokens += conv::u64_from_usize(ctx);
        if self.telemetry_cfg.enabled() {
            self.transfer_events.push((
                src,
                Event {
                    time: done_at,
                    request: orig.id,
                    kind: EventKind::KvTransferStart {
                        tokens: conv::u32_from_usize(ctx),
                    },
                },
            ));
        }
        self.pending_stitch.insert(orig.id, prefill);
        self.transfers.push(Reverse(TransferAt {
            time: maturity,
            request,
        }));
    }

    /// A decode half just completed: join it with its stored prefill
    /// half into the original request's end-to-end outcome.
    fn stitch(&mut self, decode: RequestOutcome) {
        let id = decode.request.id;
        // ador-lint: allow(panic) — invariant: a decode half always follows its recorded split
        let orig = self.origs.remove(&id).expect("split");
        // ador-lint: allow(panic) — invariant: the prefill half was stored before the transfer
        let prefill = self.pending_stitch.remove(&id).expect("split");
        let ttft = prefill.ttft;
        let e2e = (decode.request.arrival + decode.e2e) - orig.arrival;
        // Token 1 lands at the prefill side's first-token instant, token
        // 2 at the decode side's: the handoff (transfer + decode-side
        // queueing + KV attach) is a real token gap the user sees.
        let handoff_gap = (decode.request.arrival + decode.ttft) - (orig.arrival + prefill.ttft);
        let gaps = conv::f64_from_usize(orig.output_tokens - 1);
        self.stitched.push(RequestOutcome {
            request: orig,
            ttft,
            mean_tbt: (e2e - ttft) / gaps,
            max_tbt: handoff_gap.max(decode.max_tbt),
            e2e,
        });
        self.finished += 1;
    }

    /// Lands one matured transfer: route within the decode pool and
    /// submit the continuation there (transfers are never shed —
    /// admission control happened at the front door).
    fn deliver_transfer(&mut self, t: TransferAt) -> Result<(), SimError> {
        self.clock = self.clock.max(t.time);
        let tenant = self.tenant_of[&t.request.id];
        let idx = self.decode_router.route_pool(
            tenant,
            self.classes.len(),
            None,
            &self.snapshots,
            &self.decode_pool,
        );
        if self.telemetry_cfg.enabled() {
            self.transfer_events.push((
                idx,
                Event {
                    time: t.time,
                    request: t.request.id,
                    kind: EventKind::KvTransferEnd {
                        tokens: conv::u32_from_usize(t.request.input_tokens),
                    },
                },
            ));
        }
        self.engines[idx].submit(t.request)?;
        self.snapshots[idx] = snapshot(&self.engines[idx]);
        if self.cfg.drive == DriveMode::EventDriven {
            self.push_ready(idx);
        }
        Ok(())
    }

    /// Routes one fresh arrival within the prefill pool, splitting it
    /// into its prefill half (same id, `output_tokens == 1`) unless the
    /// request generates nothing beyond its first token — those complete
    /// on the prefill side and are never shipped.
    fn route_and_submit_disagg(&mut self, cr: ClusterRequest) -> Result<(), SimError> {
        let idx = self.router.route_pool(
            cr.tenant,
            self.classes.len(),
            cr.request.prefix_group,
            &self.snapshots,
            &self.prefill_pool,
        );
        let admit = self
            .cfg
            .queue_cap
            .is_none_or(|cap| self.snapshots[idx].queue_depth < cap);
        if admit {
            let mut job = cr.request;
            if job.output_tokens > 1 {
                job.output_tokens = 1;
                self.origs.insert(cr.request.id, cr.request);
            }
            self.engines[idx].submit(job)?;
            self.snapshots[idx] = snapshot(&self.engines[idx]);
            if self.cfg.drive == DriveMode::EventDriven {
                self.push_ready(idx);
            }
            self.assignments.push((cr.request.id, Some(idx)));
        } else {
            if let Some(sink) = self.engines[idx].event_sink_mut() {
                sink.record(&Event {
                    time: self.clock,
                    request: cr.request.id,
                    kind: EventKind::Shed,
                });
            }
            self.rejected_per_tenant[cr.tenant] += 1;
            self.assignments.push((cr.request.id, None));
        }
        Ok(())
    }

    /// One discrete event: the earlier of (replica-ready, next arrival).
    /// A ready replica is swept up to the next arrival in one go (its
    /// iterations are internal to the engine — no other event can
    /// interleave, since engines are independent); work scheduled exactly
    /// *at* the arrival instant runs after routing, matching the lockstep
    /// sweep's `now < arrival` bound, so both drivers route from
    /// identical snapshots. With no arrivals left, the soonest-ready
    /// replica drains completely — per-replica timelines that would drift
    /// apart under lockstep's round-robin drain all end on the one global
    /// clock here.
    fn advance_event(&mut self) -> Result<bool, SimError> {
        let next_arrival = self.stream.front().map(|cr| cr.request.arrival);
        match (next_arrival, self.peek_ready()) {
            (arrival, Some(ev)) if arrival.is_none_or(|t| ev.time < t) => {
                self.ready.pop();
                let engine = &mut self.engines[ev.replica];
                match arrival {
                    Some(horizon) => engine.step_until(horizon)?,
                    None => {
                        while !engine.is_drained() {
                            engine.step()?;
                        }
                    }
                }
                self.clock = self.clock.max(self.engines[ev.replica].now());
                self.snapshots[ev.replica] = snapshot(&self.engines[ev.replica]);
                self.push_ready(ev.replica);
                Ok(true)
            }
            (Some(arrival), _) => {
                // ador-lint: allow(panic) — invariant: the match arm peeked the stream front
                let cr = self.stream.pop_front().expect("peeked");
                self.clock = self.clock.max(arrival);
                self.route_and_submit(cr)?;
                Ok(true)
            }
            (None, _) => Ok(false),
        }
    }

    /// The lockstep oracle: sweep every replica up to the arrival, route,
    /// and (once the stream is exhausted) drain round-robin on diverging
    /// per-replica clocks. Engines are independent, so the per-request
    /// outcomes still match the event core exactly; only the driver's
    /// per-arrival cost (O(replicas), idle or not) differs.
    fn advance_lockstep(&mut self) -> Result<bool, SimError> {
        if let Some(cr) = self.stream.pop_front() {
            let arrival = cr.request.arrival;
            for (idx, engine) in self.engines.iter_mut().enumerate() {
                engine.step_until(arrival)?;
                self.snapshots[idx] = snapshot(engine);
            }
            self.clock = self.clock.max(arrival);
            self.route_and_submit(cr)?;
            return Ok(true);
        }
        let mut any = false;
        for engine in &mut self.engines {
            if !engine.is_drained() {
                engine.step()?;
                any = true;
            }
        }
        Ok(any)
    }

    /// Routes one arrival from the current snapshots and submits (or
    /// sheds) it. The snapshots reflect every replica advanced past all
    /// work scheduled before the arrival instant, whichever driver
    /// maintained them.
    fn route_and_submit(&mut self, cr: ClusterRequest) -> Result<(), SimError> {
        let idx = self.router.route(
            cr.tenant,
            self.classes.len(),
            cr.request.prefix_group,
            &self.snapshots,
        );
        let admit = self
            .cfg
            .queue_cap
            .is_none_or(|cap| self.snapshots[idx].queue_depth < cap);
        if admit {
            self.engines[idx].submit(cr.request)?;
            self.snapshots[idx] = snapshot(&self.engines[idx]);
            if self.cfg.drive == DriveMode::EventDriven {
                self.push_ready(idx);
            }
            self.assignments.push((cr.request.id, Some(idx)));
        } else {
            // The shed is attributed to the replica the router *would*
            // have used — that is the queue whose pressure caused it.
            if let Some(sink) = self.engines[idx].event_sink_mut() {
                sink.record(&Event {
                    time: self.clock,
                    request: cr.request.id,
                    kind: EventKind::Shed,
                });
            }
            self.rejected_per_tenant[cr.tenant] += 1;
            self.assignments.push((cr.request.id, None));
        }
        Ok(())
    }

    /// Enqueues `replica`'s next-work instant (no-op once drained).
    fn push_ready(&mut self, replica: usize) {
        if let Some(time) = self.engines[replica].next_event_time() {
            self.ready.push(Reverse(ReadyAt { time, replica }));
        }
    }

    /// Peeks the earliest *live* replica-ready event, lazily discarding
    /// stale entries: every state change pushed a fresh entry, so an
    /// entry whose key no longer equals its replica's live
    /// [`Engine::next_event_time`] is an outdated duplicate.
    fn peek_ready(&mut self) -> Option<ReadyAt> {
        while let Some(&Reverse(ev)) = self.ready.peek() {
            if self.engines[ev.replica].next_event_time() == Some(ev.time) {
                return Some(ev);
            }
            self.ready.pop();
        }
        None
    }

    /// The global fleet clock: the latest instant any replica has worked
    /// to, or the latest routed arrival — whichever is later. All merged
    /// fleet metrics are measured against this single timeline.
    pub fn now(&self) -> Seconds {
        self.engines
            .iter()
            .map(Engine::now)
            .fold(self.clock, Seconds::max)
    }

    /// Requests offered to the cluster so far (routed, shed, or still in
    /// the arrival stream).
    pub fn submitted(&self) -> usize {
        self.offered
    }

    /// Requests completed end-to-end. Under disaggregation a request
    /// counts only once its decode half finishes and is stitched — its
    /// prefill-half completion is an internal handoff, not service.
    pub fn completed(&self) -> usize {
        if self.link.is_some() {
            self.finished
        } else {
            self.engines.iter().map(|e| e.completed()).sum()
        }
    }

    /// Requests shed by admission control.
    pub fn rejected(&self) -> usize {
        self.rejected_per_tenant.iter().sum()
    }

    /// Requests inside the cluster: still in the arrival stream or inside
    /// a replica (queued, prefilling or decoding). KV handoffs on the
    /// wire are counted separately by [`ClusterSim::in_transfer`].
    pub fn in_flight(&self) -> usize {
        self.stream.len() + self.engines.iter().map(|e| e.in_flight()).sum::<usize>()
    }

    /// KV-context transfers currently on the wire between pools (always
    /// 0 under [`Topology::Aggregated`]). Tracked like admissions, so
    /// the conservation invariant at every [`ClusterSim::advance`]
    /// boundary is `submitted == completed + rejected + in_flight +
    /// in_transfer`.
    pub fn in_transfer(&self) -> usize {
        self.transfers.len()
    }

    /// Whether every offered request has completed or been shed.
    pub fn is_done(&self) -> bool {
        self.stream.is_empty()
            && self.transfers.is_empty()
            && self.engines.iter().all(|e| e.is_drained())
    }

    /// Per-replica completed outcomes (completion order within each
    /// replica) — the raw populations behind the report, exposed so the
    /// event-core/lockstep equivalence tests can compare per-request
    /// outcomes directly rather than through aggregates.
    pub fn replica_outcomes(&self) -> Vec<&[RequestOutcome]> {
        self.engines.iter().map(|e| e.outcomes()).collect()
    }

    /// Builds the fleet report. The merged fleet [`QosReport`] is exact:
    /// latency percentiles come from the pooled per-request outcomes and
    /// all throughput figures are measured over the shared fleet clock
    /// (the latest replica finish time) via [`QosReport::merge_exact`] —
    /// per-replica timelines are never mixed.
    ///
    /// # Panics
    ///
    /// Panics if the fleet has not fully drained (call after
    /// [`ClusterSim::advance`] returns `false`).
    pub fn finish(mut self) -> FleetReport {
        assert!(self.is_done(), "finish() requires a drained fleet");
        if self.link.is_some() {
            // Safety net for callers that drained through their own loop:
            // classification normally already ran inside advance().
            self.scan_completions();
            debug_assert_eq!(
                self.offered,
                self.finished + self.rejected(),
                "disaggregated conservation must close the books"
            );
        }
        let telemetry = self.collect_telemetry();
        let attribution = match &telemetry {
            Some(t) if self.telemetry_cfg.attribution_enabled() => Some(self.attribute(&t.events)),
            _ => None,
        };
        let per_replica: Vec<Option<QosReport>> = self.engines.iter().map(|e| e.report()).collect();
        let completed_reports: Vec<QosReport> = per_replica.iter().flatten().cloned().collect();
        let fleet = if self.link.is_some() {
            // Per-replica reports describe halves. Counters (tokens
            // prefilled/generated, preemptions, peaks, step means) sum
            // and max correctly over halves, but every latency and
            // throughput population must come from the stitched
            // end-to-end outcomes — a half's TTFT or e2e means nothing
            // to a user.
            if self.stitched.is_empty() {
                None
            } else {
                let merged = QosReport::merge(&completed_reports);
                let exact = QosReport::from_outcomes(
                    &self.stitched,
                    merged.makespan,
                    EngineCounters::default(),
                );
                Some(QosReport {
                    completed: exact.completed,
                    ttft: exact.ttft,
                    tbt: exact.tbt,
                    e2e: exact.e2e,
                    ttft_hist: exact.ttft_hist,
                    tbt_hist: exact.tbt_hist,
                    e2e_hist: exact.e2e_hist,
                    requests_per_sec: exact.requests_per_sec,
                    tokens_per_sec: exact.tokens_per_sec,
                    goodput_tokens_per_sec: exact.goodput_tokens_per_sec,
                    ..merged
                })
            }
        } else if completed_reports.is_empty() {
            None
        } else {
            let pooled: Vec<RequestOutcome> = self
                .engines
                .iter()
                .flat_map(|e| e.outcomes().iter().copied())
                .collect();
            Some(QosReport::merge_exact(&completed_reports, &pooled))
        };

        let tokens_per_replica: Vec<f64> = self
            .engines
            .iter()
            .map(|e| {
                e.outcomes()
                    .iter()
                    .map(|o| conv::f64_from_usize(o.request.total_tokens()))
                    .sum()
            })
            .collect();

        let mut per_tenant: Vec<Vec<RequestOutcome>> = vec![Vec::new(); self.classes.len()];
        if self.link.is_some() {
            for outcome in &self.stitched {
                let tenant = self.tenant_of[&outcome.request.id];
                per_tenant[tenant].push(*outcome);
            }
        } else {
            for engine in &self.engines {
                for outcome in engine.outcomes() {
                    let tenant = self.tenant_of[&outcome.request.id];
                    per_tenant[tenant].push(*outcome);
                }
            }
        }
        let tenants: Vec<TenantQos> = self
            .classes
            .iter()
            .enumerate()
            .map(|(i, class)| {
                TenantQos::from_outcomes(
                    class.name.clone(),
                    class.slo,
                    &per_tenant[i],
                    self.submitted_per_tenant[i],
                    self.rejected_per_tenant[i],
                )
            })
            .collect();

        FleetReport {
            replicas: self.engines.len(),
            policy: self.cfg.policy,
            decode_policy: self.link.map(|_| self.cfg.decode_policy),
            submitted: self.offered,
            completed: self.completed(),
            rejected: self.rejected_per_tenant.iter().sum(),
            fleet,
            per_replica,
            tenants,
            assignments: self.assignments,
            imbalance: imbalance(&tokens_per_replica),
            kv_transfers: self.kv_transfers,
            kv_transferred_tokens: self.kv_transferred_tokens,
            telemetry,
            attribution,
        }
    }

    /// Drains every replica's event sink and series collector into the
    /// report's [`FleetTelemetry`] block, or `None` when the run was
    /// untraced (keeping untraced reports bit-identical to
    /// pre-telemetry ones). Per-tenant goodput is derived post-hoc from
    /// the pooled outcomes on the shared fleet clock, so it exists even
    /// when events flow through a bounded flight recorder.
    fn collect_telemetry(&mut self) -> Option<FleetTelemetry> {
        let tcfg = self.telemetry_cfg;
        if !tcfg.enabled() {
            return None;
        }
        let end = self.now();
        let events: Vec<Vec<Event>> = self
            .engines
            .iter_mut()
            .map(|e| {
                e.take_event_sink()
                    .map(|mut sink| sink.drain())
                    .unwrap_or_default()
            })
            .collect();
        // Series and their pool-role tags are built in one pass so the
        // two vectors stay index-aligned even when some replicas carry
        // no collector.
        let mut series: Vec<TimeSeries> = Vec::new();
        let mut series_roles: Vec<PoolRole> = Vec::new();
        for (i, e) in self.engines.iter_mut().enumerate() {
            if let Some(collector) = e.take_series() {
                series.push(ador_telemetry::SeriesCollector::finish(collector));
                series_roles.push(self.roles[i]);
            }
        }
        // The lane accumulates in classification/delivery order; pin a
        // single time-ordered view (starts before ends at equal stamps).
        let mut transfer_events = std::mem::take(&mut self.transfer_events);
        let is_end = |e: &Event| matches!(e.kind, EventKind::KvTransferEnd { .. });
        transfer_events.sort_by(|(_, a), (_, b)| {
            a.time
                .partial_cmp(&b.time)
                // ador-lint: allow(panic) — invariant: event times are finite sums of latencies
                .expect("event times are never NaN")
                .then(a.request.cmp(&b.request))
                .then(is_end(a).cmp(&is_end(b)))
        });
        let (tenant_goodput, goodput_interval) = match tcfg.series_interval {
            None => (Vec::new(), Seconds::ZERO),
            Some(interval) => {
                let mut completions: Vec<Vec<(Seconds, u64)>> =
                    vec![Vec::new(); self.classes.len()];
                let mut record = |o: &RequestOutcome| {
                    let tenant = self.tenant_of[&o.request.id];
                    completions[tenant].push((
                        o.request.arrival + o.e2e,
                        conv::u64_from_usize(o.request.output_tokens),
                    ));
                };
                if self.link.is_some() {
                    // Halves are bookkeeping; goodput counts end-to-end
                    // service once, on the stitched outcomes.
                    for o in &self.stitched {
                        record(o);
                    }
                } else {
                    for engine in &self.engines {
                        for o in engine.outcomes() {
                            record(o);
                        }
                    }
                }
                let per_tenant = completions
                    .iter()
                    .map(|c| goodput_series(c, interval, end))
                    .collect();
                (per_tenant, interval)
            }
        };
        Some(FleetTelemetry {
            events,
            series,
            series_roles,
            tenant_goodput,
            goodput_interval,
            transfer_events,
        })
    }

    /// Replays the recorded event streams into per-tenant blame ledgers
    /// (see [`ador_telemetry::attribution`]): each attributed request is
    /// judged against its tenant's SLO, misses are blamed on their
    /// dominant loss, and shed requests are counted without time-loss.
    /// The fleet ledger is the exact merge of the tenant ledgers.
    fn attribute(&self, events: &[Vec<Event>]) -> FleetAttribution {
        let mut met: BTreeMap<u64, bool> = BTreeMap::new();
        let mut judge = |o: &RequestOutcome, classes: &[TenantClass]| {
            let slo = classes[self.tenant_of[&o.request.id]].slo;
            met.insert(o.request.id, slo.met(o));
        };
        if self.link.is_some() {
            // Halves mean nothing to a user: judge stitched end-to-end
            // outcomes, exactly like the per-tenant QoS does.
            for o in &self.stitched {
                judge(o, &self.classes);
            }
        } else {
            for engine in &self.engines {
                for o in engine.outcomes() {
                    judge(o, &self.classes);
                }
            }
        }
        let mut per_tenant = vec![AttributionReport::default(); self.classes.len()];
        for attr in ador_telemetry::attribute_events(events) {
            let Some(&tenant) = self.tenant_of.get(&attr.request) else {
                continue;
            };
            // Requests with no judged outcome (still in flight at a
            // truncated ring's horizon) cannot have missed.
            let missed = !met.get(&attr.request).copied().unwrap_or(true);
            per_tenant[tenant].record(&attr, missed);
        }
        for (tenant, &rejected) in self.rejected_per_tenant.iter().enumerate() {
            per_tenant[tenant].record_shed(conv::u64_from_usize(rejected));
        }
        let mut fleet = AttributionReport::default();
        for tenant in &per_tenant {
            fleet.merge(tenant);
        }
        FleetAttribution { per_tenant, fleet }
    }
}

impl std::fmt::Debug for ClusterSim<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterSim")
            .field("replicas", &self.engines.len())
            .field("policy", &self.cfg.policy)
            .field("offered", &self.offered)
            .field("completed", &self.completed())
            .field("rejected", &self.rejected())
            .finish()
    }
}

fn snapshot(engine: &Engine<'_>) -> ReplicaSnapshot {
    ReplicaSnapshot {
        queue_depth: engine.queue_depth(),
        active: engine.active_len(),
        kv_in_use: engine.kv_in_use(),
        backlog_tokens: engine.backlog_tokens(),
        kv_budget_tokens: engine.kv_budget_tokens(),
    }
}

#[cfg(test)]
mod tests {
    // tests may unwrap: a failed unwrap is exactly the test failing
    #![allow(clippy::unwrap_used)]

    use super::*;
    use ador_baselines::ador_table3;
    use ador_model::presets;

    fn two_class_mix(rate: f64) -> TenantMix {
        TenantMix::new(vec![
            TenantClass::chatbot(rate * 0.7),
            TenantClass::summarization(rate * 0.3),
        ])
    }

    #[test]
    fn fleet_completes_everything_without_admission_control() {
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let cfg = ClusterConfig::new(3, RouterPolicy::JoinShortestQueue);
        let report = ClusterSim::new(&arch, &model, Deployment::single_device(), cfg)
            .unwrap()
            .run(&two_class_mix(6.0), 90, 5)
            .unwrap();
        assert_eq!(report.submitted, 90);
        assert_eq!(report.completed, 90);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.replicas, 3);
        assert_eq!(report.assignments.len(), 90);
        assert!(report.fleet.is_some());
        let by_tenant: usize = report.tenants.iter().map(|t| t.completed).sum();
        assert_eq!(by_tenant, 90, "every outcome maps back to a tenant");
    }

    #[test]
    fn zero_replicas_is_an_error() {
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let err = ClusterSim::new(
            &arch,
            &model,
            Deployment::single_device(),
            ClusterConfig::new(0, RouterPolicy::RoundRobin),
        )
        .unwrap_err();
        assert_eq!(err, SimError::EmptyConfig);
    }

    #[test]
    fn queue_cap_sheds_under_overload() {
        let arch = ador_table3();
        let model = presets::llama3_8b();
        // One tiny replica, a flood of arrivals, and a 2-deep queue cap.
        let cfg = ClusterConfig::new(1, RouterPolicy::JoinShortestQueue)
            .with_engine(SimConfig::new(1.0, 4))
            .with_queue_cap(2);
        let report = ClusterSim::new(&arch, &model, Deployment::single_device(), cfg)
            .unwrap()
            .run(&two_class_mix(100.0), 80, 9)
            .unwrap();
        assert!(report.rejected > 0, "overload must shed");
        assert_eq!(report.completed + report.rejected, 80);
        let shed_tenants: usize = report.tenants.iter().map(|t| t.rejected).sum();
        assert_eq!(shed_tenants, report.rejected);
        // Shed requests appear as unassigned in the routing trace.
        let unassigned = report
            .assignments
            .iter()
            .filter(|(_, r)| r.is_none())
            .count();
        assert_eq!(unassigned, report.rejected);
    }

    #[test]
    fn untraced_fleets_carry_no_telemetry_and_traced_runs_change_nothing() {
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let mix = two_class_mix(6.0);
        let run = |telemetry: TelemetryConfig| {
            let cfg =
                ClusterConfig::new(2, RouterPolicy::JoinShortestQueue).with_telemetry(telemetry);
            ClusterSim::new(&arch, &model, Deployment::single_device(), cfg)
                .unwrap()
                .run(&mix, 60, 11)
                .unwrap()
        };
        let off = run(TelemetryConfig::OFF);
        assert!(off.telemetry.is_none());
        let mut on = run(TelemetryConfig::trace().with_series(Seconds::from_millis(50.0)));
        let telemetry = on.telemetry.take().expect("traced run carries telemetry");
        // Telemetry observes the run without perturbing it.
        assert_eq!(on, off);
        assert_eq!(telemetry.events.len(), 2);
        assert_eq!(telemetry.series.len(), 2);
        assert!(telemetry.events.iter().any(|e| !e.is_empty()));
        assert!(telemetry.series.iter().any(|s| !s.points.is_empty()));
        // One goodput lane per tenant, on the configured window.
        assert_eq!(telemetry.tenant_goodput.len(), 2);
        assert_eq!(telemetry.goodput_interval, Seconds::from_millis(50.0));
        let total: f64 = telemetry.tenant_goodput.iter().flatten().sum();
        assert!(total > 0.0, "completed tokens must show up as goodput");
    }

    #[test]
    fn shed_requests_are_stamped_in_the_chosen_replicas_trace() {
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let cfg = ClusterConfig::new(1, RouterPolicy::JoinShortestQueue)
            .with_engine(SimConfig::new(1.0, 4))
            .with_queue_cap(2)
            .with_telemetry(TelemetryConfig::trace());
        let report = ClusterSim::new(&arch, &model, Deployment::single_device(), cfg)
            .unwrap()
            .run(&two_class_mix(100.0), 80, 9)
            .unwrap();
        assert!(report.rejected > 0, "overload must shed");
        let telemetry = report.telemetry.expect("traced run carries telemetry");
        let sheds = telemetry.events[0]
            .iter()
            .filter(|e| e.kind == ador_telemetry::EventKind::Shed)
            .count();
        assert_eq!(sheds, report.rejected);
    }

    fn disagg_link() -> KvLink {
        KvLink::new(
            ador_units::Bandwidth::from_gbps(64.0),
            Seconds::from_millis(0.25),
        )
    }

    fn pd_fleet(prefill: usize, decode: usize) -> FleetSpec {
        let spec = crate::ReplicaSpec::new(ador_table3(), SimConfig::new(1.0, 64));
        FleetSpec::prefill_decode(&spec, prefill, &spec, decode)
    }

    #[test]
    fn disaggregated_fleet_completes_and_stitches_everything() {
        let model = presets::llama3_8b();
        let fleet = pd_fleet(1, 2);
        let cfg = ClusterConfig::new(0, RouterPolicy::JoinShortestQueue)
            .with_disaggregation(disagg_link());
        let mix = two_class_mix(6.0);
        let report = ClusterSim::new_fleet(&fleet, &model, Deployment::single_device(), cfg)
            .unwrap()
            .run(&mix, 60, 5)
            .unwrap();
        assert_eq!(report.submitted, 60);
        assert_eq!(report.completed, 60);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.replicas, 3);
        assert_eq!(report.decode_policy, Some(RouterPolicy::LeastKvLoad));
        // Every multi-token request crossed the link exactly once, with
        // its whole landed context (prompt + first token).
        assert_eq!(report.kv_transfers, 60);
        assert!(report.kv_transferred_tokens > 60, "contexts carry tokens");
        let fleet_qos = report.fleet.expect("completions produce a report");
        assert_eq!(fleet_qos.completed, 60);
        // Stitched lifecycles are whole: generated tokens across the two
        // halves equal the declared response lengths.
        let by_tenant: usize = report.tenants.iter().map(|t| t.completed).sum();
        assert_eq!(by_tenant, 60);
        // Split halves never leak into the per-request populations: every
        // stitched e2e covers at least its TTFT plus the handoff.
        assert!(fleet_qos.e2e.mean > fleet_qos.ttft.mean);
    }

    #[test]
    fn disaggregated_drivers_are_bit_identical() {
        let model = presets::llama3_8b();
        let fleet = pd_fleet(2, 2);
        let mix = two_class_mix(8.0);
        let run = |drive: DriveMode| {
            let cfg = ClusterConfig::new(0, RouterPolicy::JoinShortestQueue)
                .with_disaggregation(disagg_link())
                .with_drive_mode(drive);
            ClusterSim::new_fleet(&fleet, &model, Deployment::single_device(), cfg)
                .unwrap()
                .run(&mix, 80, 13)
                .unwrap()
        };
        let event = run(DriveMode::EventDriven);
        let lockstep = run(DriveMode::Lockstep);
        assert_eq!(event, lockstep);
    }

    #[test]
    fn disaggregated_conservation_holds_at_every_boundary() {
        let model = presets::llama3_8b();
        let fleet = pd_fleet(1, 1);
        let cfg = ClusterConfig::new(0, RouterPolicy::JoinShortestQueue)
            .with_disaggregation(disagg_link());
        let mix = two_class_mix(10.0);
        let mut sim =
            ClusterSim::new_fleet(&fleet, &model, Deployment::single_device(), cfg).unwrap();
        sim.submit_stream(&mix, mix.generate(50, 3));
        let mut saw_transfer = false;
        loop {
            assert_eq!(
                sim.submitted(),
                sim.completed() + sim.rejected() + sim.in_flight() + sim.in_transfer(),
                "conservation must hold between events"
            );
            saw_transfer |= sim.in_transfer() > 0;
            if !sim.advance().unwrap() {
                break;
            }
        }
        assert!(saw_transfer, "the handoff must be observable mid-flight");
        let report = sim.finish();
        assert_eq!(report.completed + report.rejected, 50);
    }

    #[test]
    fn transfer_link_cost_is_charged_on_the_clock() {
        let model = presets::llama3_8b();
        let fleet = pd_fleet(1, 1);
        let mix = two_class_mix(4.0);
        let run = |link: KvLink| {
            let cfg =
                ClusterConfig::new(0, RouterPolicy::JoinShortestQueue).with_disaggregation(link);
            ClusterSim::new_fleet(&fleet, &model, Deployment::single_device(), cfg)
                .unwrap()
                .run(&mix, 40, 7)
                .unwrap()
        };
        let fast = run(disagg_link());
        let slow = run(KvLink::new(
            ador_units::Bandwidth::from_gbps(1.0),
            Seconds::from_millis(20.0),
        ));
        let (fast_qos, slow_qos) = (fast.fleet.unwrap(), slow.fleet.unwrap());
        // A slower link cannot change TTFT (prefill side is untouched)
        // but must show up in the handoff gap and end-to-end latency.
        assert_eq!(fast_qos.ttft.mean, slow_qos.ttft.mean);
        assert!(slow_qos.e2e.mean > fast_qos.e2e.mean);
        assert!(slow_qos.tbt.max >= fast_qos.tbt.max);
    }

    #[test]
    fn disaggregation_with_an_empty_pool_is_rejected() {
        let model = presets::llama3_8b();
        let spec = crate::ReplicaSpec::new(ador_table3(), SimConfig::new(1.0, 64));
        let fleet = FleetSpec::prefill_decode(&spec, 2, &spec, 0);
        let cfg =
            ClusterConfig::new(0, RouterPolicy::RoundRobin).with_disaggregation(disagg_link());
        let err =
            ClusterSim::new_fleet(&fleet, &model, Deployment::single_device(), cfg).unwrap_err();
        assert_eq!(err, SimError::EmptyConfig);
    }

    #[test]
    fn disaggregated_telemetry_carries_transfer_spans() {
        let model = presets::llama3_8b();
        let fleet = pd_fleet(1, 1);
        let cfg = ClusterConfig::new(0, RouterPolicy::JoinShortestQueue)
            .with_disaggregation(disagg_link())
            .with_telemetry(TelemetryConfig::trace());
        let mix = two_class_mix(4.0);
        let report = ClusterSim::new_fleet(&fleet, &model, Deployment::single_device(), cfg)
            .unwrap()
            .run(&mix, 30, 11)
            .unwrap();
        let telemetry = report.telemetry.expect("traced run carries telemetry");
        let starts = telemetry
            .transfer_events
            .iter()
            .filter(|(r, e)| {
                *r == 0 && matches!(e.kind, ador_telemetry::EventKind::KvTransferStart { .. })
            })
            .count();
        let ends = telemetry
            .transfer_events
            .iter()
            .filter(|(r, e)| {
                *r == 1 && matches!(e.kind, ador_telemetry::EventKind::KvTransferEnd { .. })
            })
            .count();
        assert_eq!(starts, report.kv_transfers, "one departure per transfer");
        assert_eq!(ends, report.kv_transfers, "one landing per transfer");
        let times: Vec<f64> = telemetry
            .transfer_events
            .iter()
            .map(|(_, e)| e.time.get())
            .collect();
        assert!(
            times.windows(2).all(|w| w[0] <= w[1]),
            "the lane is time-ordered"
        );
    }

    #[test]
    fn single_replica_fleet_matches_the_bare_engine() {
        // A 1-replica cluster with no admission control is exactly one
        // ServingSim run over the same stream.
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let mix = two_class_mix(4.0);
        let stream = mix.generate(50, 21);
        let engine_cfg = SimConfig::new(1.0, 64);

        let cfg = ClusterConfig::new(1, RouterPolicy::RoundRobin).with_engine(engine_cfg);
        let fleet = ClusterSim::new(&arch, &model, Deployment::single_device(), cfg)
            .unwrap()
            .run_stream(&mix, stream.clone())
            .unwrap();

        let (solo, _) = ServingSim::new(&arch, &model, Deployment::single_device(), engine_cfg)
            .unwrap()
            .run_requests(stream.into_iter().map(|cr| cr.request).collect())
            .unwrap();
        assert_eq!(fleet.fleet.as_ref(), Some(&solo));
        assert_eq!(fleet.per_replica[0].as_ref(), Some(&solo));
        assert_eq!(fleet.imbalance, 0.0);
    }
}
