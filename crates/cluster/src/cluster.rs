//! The fleet simulator: N engine replicas behind a router, driven by a
//! discrete-event core on one global clock.
//!
//! The default driver ([`DriveMode::EventDriven`]) keeps a binary-heap
//! event queue over the two event kinds a fleet has — request arrivals
//! and replica-ready instants ([`Engine::next_event_time`]) — and always
//! processes the earliest. A replica is stepped only when it actually has
//! work scheduled before the next routing decision, so idle replicas cost
//! nothing per arrival, and every routing decision and metric is stamped
//! from the single global clock. The previous lockstep driver
//! ([`DriveMode::Lockstep`]), which swept all N replicas up to each
//! arrival and let per-replica clocks diverge during the drain, is kept
//! as the regression oracle: both drivers produce identical per-request
//! outcomes (pinned by `tests/cluster_serving.rs`).

use std::cmp::{Ordering, Reverse};
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

use ador_hw::Architecture;
use ador_model::ModelConfig;
use ador_perf::Deployment;
use ador_serving::{Engine, QosReport, RequestOutcome, ServingSim, SimConfig, SimError};
use ador_telemetry::{goodput_series, Event, EventKind, TelemetryConfig, TimeSeries};
use ador_units::{conv, Seconds};
use serde::Serialize;

use crate::report::{imbalance, FleetTelemetry};
use crate::{
    ClusterRequest, FleetReport, ReplicaSnapshot, Router, RouterPolicy, TenantClass, TenantMix,
    TenantQos,
};

/// How the fleet driver advances its replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub enum DriveMode {
    /// The discrete-event core (default): a binary-heap event queue over
    /// arrivals and replica-ready instants. Each replica advances only
    /// when it has work scheduled before the next event, so per-arrival
    /// cost scales with the *busy* replicas, not the fleet size.
    #[default]
    EventDriven,
    /// The original lockstep driver, kept as the regression oracle: every
    /// replica is swept up to each arrival instant, and after the last
    /// arrival the fleet drains round-robin, one iteration per replica
    /// per round. O(replicas) work per arrival even when most replicas
    /// are idle. Produces per-request outcomes identical to
    /// [`DriveMode::EventDriven`].
    Lockstep,
}

impl std::fmt::Display for DriveMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DriveMode::EventDriven => "event-driven",
            DriveMode::Lockstep => "lockstep",
        })
    }
}

/// Fleet-level configuration: replica count, routing policy, admission
/// control, and the per-replica engine knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ClusterConfig {
    /// Engine replicas in the fleet.
    pub replicas: usize,
    /// The routing policy at the front door.
    pub policy: RouterPolicy,
    /// Admission control: shed a request when its chosen replica already
    /// has this many requests waiting. `None` admits everything.
    pub queue_cap: Option<usize>,
    /// Per-replica engine knobs (batch cap, prefill chunk, KV fraction,
    /// scheduler policy). The `arrival_rate`, `requests` and `seed`
    /// fields are unused — the cluster's [`TenantMix`] owns the workload.
    pub engine: SimConfig,
    /// How the driver advances replicas. The event-driven core and the
    /// lockstep oracle produce identical reports; the knob exists for
    /// regression testing and the `bench_cluster` wall-clock comparison.
    pub drive: DriveMode,
}

impl ClusterConfig {
    /// Creates a config with `replicas` engines behind `policy`, 128-slot
    /// replicas and no admission control.
    pub fn new(replicas: usize, policy: RouterPolicy) -> Self {
        Self {
            replicas,
            policy,
            queue_cap: None,
            engine: SimConfig::new(1.0, 128),
            drive: DriveMode::EventDriven,
        }
    }

    /// Sets the per-replica engine configuration.
    pub fn with_engine(mut self, engine: SimConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Selects the fleet driver (event-driven by default).
    pub fn with_drive_mode(mut self, drive: DriveMode) -> Self {
        self.drive = drive;
        self
    }

    /// Sets the admission-control queue cap.
    pub fn with_queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = Some(cap);
        self
    }

    /// Enables or disables prefix-aware KV reuse on every replica engine
    /// (shorthand for setting
    /// [`SimConfig::prefix_caching`](ador_serving::SimConfig::prefix_caching)
    /// on the embedded engine config). Reuse is strictly per-replica, so
    /// pair it with [`RouterPolicy::CacheAffinity`] to keep a session's
    /// turns where its prefix lives.
    pub fn with_prefix_caching(mut self, enabled: bool) -> Self {
        self.engine.prefix_caching = enabled;
        self
    }

    /// Configures speculative decoding on every replica engine (shorthand
    /// for setting
    /// [`SimConfig::speculation`](ador_serving::SimConfig::speculation)
    /// on the embedded engine config). Per-request acceptance profiles
    /// come from each [`TenantClass::accept_rate`]; the `SloAdaptive`
    /// policy reads each request's class SLO, both stamped onto requests
    /// by [`TenantMix::generate`](crate::TenantMix::generate).
    pub fn with_speculation(mut self, speculation: ador_spec::SpeculationConfig) -> Self {
        self.engine.speculation = speculation;
        self
    }

    /// Configures telemetry on every replica engine (shorthand for
    /// setting [`SimConfig::telemetry`](ador_serving::SimConfig) on the
    /// embedded engine config). With anything enabled, the drained
    /// artifacts land on [`FleetReport::telemetry`]; shed requests are
    /// additionally stamped with [`EventKind::Shed`](ador_telemetry::EventKind)
    /// in the sink of the replica the router chose for them. The default
    /// ([`TelemetryConfig::OFF`]) records nothing and leaves the run
    /// bit-identical to an untraced fleet.
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.engine.telemetry = telemetry;
        self
    }
}

/// A replica-ready event: the instant one replica next has work, on the
/// global fleet clock. Min-heap ordered via [`Reverse`]; ties break
/// toward the lowest replica index (engines are independent, so tie
/// order cannot affect outcomes — the fixed order just keeps the event
/// trace deterministic).
#[derive(Debug, Clone, Copy, PartialEq)]
struct ReadyAt {
    time: Seconds,
    replica: usize,
}

impl Eq for ReadyAt {}

impl PartialOrd for ReadyAt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ReadyAt {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time
            .partial_cmp(&other.time)
            // ador-lint: allow(panic) — invariant: event times are finite sums of latencies
            .expect("event times are never NaN")
            .then(self.replica.cmp(&other.replica))
    }
}

/// A fleet of engine replicas behind a [`Router`].
///
/// The default driver is a discrete-event core on one global clock: a
/// binary-heap event queue holds each busy replica keyed by the instant
/// it next has work ([`Engine::next_event_time`]), and the sorted arrival
/// stream supplies the other event kind. [`ClusterSim::advance`] always
/// processes the earliest event — it either sweeps the soonest-ready
/// replica up to the next arrival, or (when no replica has work strictly
/// before the next arrival) routes that arrival from cached load
/// snapshots that are refreshed only when a replica steps or receives a
/// request. Idle
/// replicas are never touched, so per-event cost scales with the busy
/// part of the fleet; the drain after the last arrival is the same loop
/// with no arrivals left, on the same clock.
///
/// [`DriveMode::Lockstep`] selects the original sweep-all-replicas
/// driver, retained as a regression oracle — both drivers produce
/// identical per-request outcomes and fleet reports.
///
/// [`ClusterSim::run`] does all of this in one call; the incremental
/// [`ClusterSim::submit_stream`] / [`ClusterSim::advance`] /
/// [`ClusterSim::finish`] surface exists so tests and tools can observe
/// fleet state (e.g. the conservation invariant
/// `submitted == completed + rejected + in_flight`) between events.
///
/// # Examples
///
/// ```
/// use ador_cluster::{ClusterConfig, ClusterSim, RouterPolicy, TenantClass, TenantMix};
/// use ador_perf::Deployment;
///
/// let arch = ador_baselines::ador_table3();
/// let model = ador_model::presets::llama3_8b();
/// let mix = TenantMix::new(vec![
///     TenantClass::chatbot(4.0),
///     TenantClass::code_completion(2.0),
/// ]);
/// let cfg = ClusterConfig::new(2, RouterPolicy::JoinShortestQueue);
/// let report = ClusterSim::new(&arch, &model, Deployment::single_device(), cfg)?
///     .run(&mix, 60, 7)?;
/// assert_eq!(report.completed, 60);
/// assert_eq!(report.tenants.len(), 2);
/// # Ok::<(), ador_serving::SimError>(())
/// ```
pub struct ClusterSim<'a> {
    engines: Vec<Engine<'a>>,
    router: Router,
    cfg: ClusterConfig,
    stream: VecDeque<ClusterRequest>,
    classes: Vec<TenantClass>,
    offered: usize,
    /// Tenant tag per request id (`BTreeMap` by the determinism
    /// contract — see `ador-lint`; lookups are by exact id).
    tenant_of: BTreeMap<u64, usize>,
    submitted_per_tenant: Vec<usize>,
    rejected_per_tenant: Vec<usize>,
    assignments: Vec<(u64, Option<usize>)>,
    /// The global fleet clock: the latest event instant processed. Every
    /// routing decision is stamped at or after this time.
    clock: Seconds,
    /// The event queue of the discrete-event driver: busy replicas keyed
    /// by [`Engine::next_event_time`]. Entries are invalidated lazily —
    /// every state change pushes a fresh entry, and a popped entry whose
    /// key no longer matches its replica's live peek is discarded.
    ready: BinaryHeap<Reverse<ReadyAt>>,
    /// Cached per-replica load snapshots, refreshed only when a replica
    /// steps or receives a submission (its load state changes exactly
    /// then, and never merely by time passing).
    snapshots: Vec<ReplicaSnapshot>,
}

impl<'a> ClusterSim<'a> {
    /// Builds a fleet of identical replicas.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyConfig`] for a zero replica count and
    /// propagates per-replica construction errors (model does not fit,
    /// no KV headroom, …).
    pub fn new(
        arch: &'a Architecture,
        model: &'a ModelConfig,
        deployment: Deployment,
        cfg: ClusterConfig,
    ) -> Result<Self, SimError> {
        if cfg.replicas == 0 {
            return Err(SimError::EmptyConfig);
        }
        let engines = (0..cfg.replicas)
            .map(|_| Ok(ServingSim::new(arch, model, deployment, cfg.engine)?.engine()))
            .collect::<Result<Vec<_>, SimError>>()?;
        let snapshots = engines.iter().map(snapshot).collect();
        Ok(Self {
            engines,
            router: Router::new(cfg.policy),
            cfg,
            stream: VecDeque::new(),
            classes: Vec::new(),
            offered: 0,
            tenant_of: BTreeMap::new(),
            submitted_per_tenant: Vec::new(),
            rejected_per_tenant: Vec::new(),
            assignments: Vec::new(),
            clock: Seconds::ZERO,
            ready: BinaryHeap::new(),
            snapshots,
        })
    }

    /// Generates `count` requests from `mix` under `seed` and runs the
    /// fleet to completion.
    ///
    /// # Errors
    ///
    /// Propagates engine errors (see [`Engine::submit`] / [`Engine::step`]).
    pub fn run(self, mix: &TenantMix, count: usize, seed: u64) -> Result<FleetReport, SimError> {
        let stream = mix.generate(count, seed);
        self.run_stream(mix, stream)
    }

    /// Runs an explicit tagged request stream (a recorded trace, say) to
    /// completion. See [`ClusterSim::submit_stream`] for its requirements.
    ///
    /// # Errors
    ///
    /// Propagates engine errors (see [`Engine::submit`] / [`Engine::step`]).
    pub fn run_stream(
        mut self,
        mix: &TenantMix,
        stream: Vec<ClusterRequest>,
    ) -> Result<FleetReport, SimError> {
        self.submit_stream(mix, stream);
        while self.advance()? {}
        Ok(self.finish())
    }

    /// Loads a tagged request stream for incremental driving. The stream
    /// is sorted by arrival internally; request ids must be unique and
    /// tenant tags must index into `mix`'s classes.
    ///
    /// # Panics
    ///
    /// Panics on duplicate request ids, out-of-range tenant tags, or if a
    /// stream was already loaded.
    pub fn submit_stream(&mut self, mix: &TenantMix, mut stream: Vec<ClusterRequest>) {
        assert!(
            self.classes.is_empty() && self.stream.is_empty(),
            "a cluster runs one stream per lifetime"
        );
        self.classes = mix.classes().to_vec();
        self.submitted_per_tenant = vec![0; self.classes.len()];
        self.rejected_per_tenant = vec![0; self.classes.len()];
        stream.sort_by(|a, b| {
            a.request
                .arrival
                .partial_cmp(&b.request.arrival)
                // ador-lint: allow(panic) — invariant: arrivals are finite draws from the workload
                .expect("arrival times are never NaN")
        });
        for cr in &stream {
            assert!(
                cr.tenant < self.classes.len(),
                "tenant tag {} out of range for a {}-class mix",
                cr.tenant,
                self.classes.len()
            );
            assert!(
                !self.tenant_of.contains_key(&cr.request.id),
                "duplicate request id {}",
                cr.request.id
            );
            self.tenant_of.insert(cr.request.id, cr.tenant);
            self.submitted_per_tenant[cr.tenant] += 1;
        }
        self.offered = stream.len();
        self.stream = stream.into();
    }

    /// Advances the fleet by one event and returns `false` once fully
    /// drained.
    ///
    /// Under [`DriveMode::EventDriven`] one event is either a sweep of
    /// the soonest-ready replica up to the next arrival (its full drain
    /// once the stream is exhausted) or one routing decision — whichever
    /// is earliest on the global clock. Under
    /// [`DriveMode::Lockstep`] one event is one routed arrival (with every
    /// replica first swept up to the arrival instant) or one round-robin
    /// drain round. Both drivers preserve the conservation invariant
    /// `submitted == completed + rejected + in_flight` between calls and
    /// produce identical per-request outcomes.
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn advance(&mut self) -> Result<bool, SimError> {
        match self.cfg.drive {
            DriveMode::EventDriven => self.advance_event(),
            DriveMode::Lockstep => self.advance_lockstep(),
        }
    }

    /// One discrete event: the earlier of (replica-ready, next arrival).
    /// A ready replica is swept up to the next arrival in one go (its
    /// iterations are internal to the engine — no other event can
    /// interleave, since engines are independent); work scheduled exactly
    /// *at* the arrival instant runs after routing, matching the lockstep
    /// sweep's `now < arrival` bound, so both drivers route from
    /// identical snapshots. With no arrivals left, the soonest-ready
    /// replica drains completely — per-replica timelines that would drift
    /// apart under lockstep's round-robin drain all end on the one global
    /// clock here.
    fn advance_event(&mut self) -> Result<bool, SimError> {
        let next_arrival = self.stream.front().map(|cr| cr.request.arrival);
        match (next_arrival, self.peek_ready()) {
            (arrival, Some(ev)) if arrival.is_none_or(|t| ev.time < t) => {
                self.ready.pop();
                let engine = &mut self.engines[ev.replica];
                match arrival {
                    Some(horizon) => engine.step_until(horizon)?,
                    None => {
                        while !engine.is_drained() {
                            engine.step()?;
                        }
                    }
                }
                self.clock = self.clock.max(self.engines[ev.replica].now());
                self.snapshots[ev.replica] = snapshot(&self.engines[ev.replica]);
                self.push_ready(ev.replica);
                Ok(true)
            }
            (Some(arrival), _) => {
                // ador-lint: allow(panic) — invariant: the match arm peeked the stream front
                let cr = self.stream.pop_front().expect("peeked");
                self.clock = self.clock.max(arrival);
                self.route_and_submit(cr)?;
                Ok(true)
            }
            (None, _) => Ok(false),
        }
    }

    /// The lockstep oracle: sweep every replica up to the arrival, route,
    /// and (once the stream is exhausted) drain round-robin on diverging
    /// per-replica clocks. Engines are independent, so the per-request
    /// outcomes still match the event core exactly; only the driver's
    /// per-arrival cost (O(replicas), idle or not) differs.
    fn advance_lockstep(&mut self) -> Result<bool, SimError> {
        if let Some(cr) = self.stream.pop_front() {
            let arrival = cr.request.arrival;
            for (idx, engine) in self.engines.iter_mut().enumerate() {
                engine.step_until(arrival)?;
                self.snapshots[idx] = snapshot(engine);
            }
            self.clock = self.clock.max(arrival);
            self.route_and_submit(cr)?;
            return Ok(true);
        }
        let mut any = false;
        for engine in &mut self.engines {
            if !engine.is_drained() {
                engine.step()?;
                any = true;
            }
        }
        Ok(any)
    }

    /// Routes one arrival from the current snapshots and submits (or
    /// sheds) it. The snapshots reflect every replica advanced past all
    /// work scheduled before the arrival instant, whichever driver
    /// maintained them.
    fn route_and_submit(&mut self, cr: ClusterRequest) -> Result<(), SimError> {
        let idx = self.router.route(
            cr.tenant,
            self.classes.len(),
            cr.request.prefix_group,
            &self.snapshots,
        );
        let admit = self
            .cfg
            .queue_cap
            .is_none_or(|cap| self.snapshots[idx].queue_depth < cap);
        if admit {
            self.engines[idx].submit(cr.request)?;
            self.snapshots[idx] = snapshot(&self.engines[idx]);
            if self.cfg.drive == DriveMode::EventDriven {
                self.push_ready(idx);
            }
            self.assignments.push((cr.request.id, Some(idx)));
        } else {
            // The shed is attributed to the replica the router *would*
            // have used — that is the queue whose pressure caused it.
            if let Some(sink) = self.engines[idx].event_sink_mut() {
                sink.record(&Event {
                    time: self.clock,
                    request: cr.request.id,
                    kind: EventKind::Shed,
                });
            }
            self.rejected_per_tenant[cr.tenant] += 1;
            self.assignments.push((cr.request.id, None));
        }
        Ok(())
    }

    /// Enqueues `replica`'s next-work instant (no-op once drained).
    fn push_ready(&mut self, replica: usize) {
        if let Some(time) = self.engines[replica].next_event_time() {
            self.ready.push(Reverse(ReadyAt { time, replica }));
        }
    }

    /// Peeks the earliest *live* replica-ready event, lazily discarding
    /// stale entries: every state change pushed a fresh entry, so an
    /// entry whose key no longer equals its replica's live
    /// [`Engine::next_event_time`] is an outdated duplicate.
    fn peek_ready(&mut self) -> Option<ReadyAt> {
        while let Some(&Reverse(ev)) = self.ready.peek() {
            if self.engines[ev.replica].next_event_time() == Some(ev.time) {
                return Some(ev);
            }
            self.ready.pop();
        }
        None
    }

    /// The global fleet clock: the latest instant any replica has worked
    /// to, or the latest routed arrival — whichever is later. All merged
    /// fleet metrics are measured against this single timeline.
    pub fn now(&self) -> Seconds {
        self.engines
            .iter()
            .map(Engine::now)
            .fold(self.clock, Seconds::max)
    }

    /// Requests offered to the cluster so far (routed, shed, or still in
    /// the arrival stream).
    pub fn submitted(&self) -> usize {
        self.offered
    }

    /// Requests completed across all replicas.
    pub fn completed(&self) -> usize {
        self.engines.iter().map(|e| e.completed()).sum()
    }

    /// Requests shed by admission control.
    pub fn rejected(&self) -> usize {
        self.rejected_per_tenant.iter().sum()
    }

    /// Requests inside the cluster: still in the arrival stream or inside
    /// a replica (queued, prefilling or decoding).
    pub fn in_flight(&self) -> usize {
        self.stream.len() + self.engines.iter().map(|e| e.in_flight()).sum::<usize>()
    }

    /// Whether every offered request has completed or been shed.
    pub fn is_done(&self) -> bool {
        self.stream.is_empty() && self.engines.iter().all(|e| e.is_drained())
    }

    /// Per-replica completed outcomes (completion order within each
    /// replica) — the raw populations behind the report, exposed so the
    /// event-core/lockstep equivalence tests can compare per-request
    /// outcomes directly rather than through aggregates.
    pub fn replica_outcomes(&self) -> Vec<&[RequestOutcome]> {
        self.engines.iter().map(|e| e.outcomes()).collect()
    }

    /// Builds the fleet report. The merged fleet [`QosReport`] is exact:
    /// latency percentiles come from the pooled per-request outcomes and
    /// all throughput figures are measured over the shared fleet clock
    /// (the latest replica finish time) via [`QosReport::merge_exact`] —
    /// per-replica timelines are never mixed.
    ///
    /// # Panics
    ///
    /// Panics if the fleet has not fully drained (call after
    /// [`ClusterSim::advance`] returns `false`).
    pub fn finish(mut self) -> FleetReport {
        assert!(self.is_done(), "finish() requires a drained fleet");
        let telemetry = self.collect_telemetry();
        let per_replica: Vec<Option<QosReport>> = self.engines.iter().map(|e| e.report()).collect();
        let completed_reports: Vec<QosReport> = per_replica.iter().flatten().cloned().collect();
        let fleet = if completed_reports.is_empty() {
            None
        } else {
            let pooled: Vec<RequestOutcome> = self
                .engines
                .iter()
                .flat_map(|e| e.outcomes().iter().copied())
                .collect();
            Some(QosReport::merge_exact(&completed_reports, &pooled))
        };

        let tokens_per_replica: Vec<f64> = self
            .engines
            .iter()
            .map(|e| {
                e.outcomes()
                    .iter()
                    .map(|o| conv::f64_from_usize(o.request.total_tokens()))
                    .sum()
            })
            .collect();

        let mut per_tenant: Vec<Vec<RequestOutcome>> = vec![Vec::new(); self.classes.len()];
        for engine in &self.engines {
            for outcome in engine.outcomes() {
                let tenant = self.tenant_of[&outcome.request.id];
                per_tenant[tenant].push(*outcome);
            }
        }
        let tenants: Vec<TenantQos> = self
            .classes
            .iter()
            .enumerate()
            .map(|(i, class)| {
                TenantQos::from_outcomes(
                    class.name.clone(),
                    class.slo,
                    &per_tenant[i],
                    self.submitted_per_tenant[i],
                    self.rejected_per_tenant[i],
                )
            })
            .collect();

        FleetReport {
            replicas: self.engines.len(),
            policy: self.cfg.policy,
            submitted: self.offered,
            completed: self.engines.iter().map(|e| e.completed()).sum(),
            rejected: self.rejected_per_tenant.iter().sum(),
            fleet,
            per_replica,
            tenants,
            assignments: self.assignments,
            imbalance: imbalance(&tokens_per_replica),
            telemetry,
        }
    }

    /// Drains every replica's event sink and series collector into the
    /// report's [`FleetTelemetry`] block, or `None` when the run was
    /// untraced (keeping untraced reports bit-identical to
    /// pre-telemetry ones). Per-tenant goodput is derived post-hoc from
    /// the pooled outcomes on the shared fleet clock, so it exists even
    /// when events flow through a bounded flight recorder.
    fn collect_telemetry(&mut self) -> Option<FleetTelemetry> {
        let tcfg = self.cfg.engine.telemetry;
        if !tcfg.enabled() {
            return None;
        }
        let end = self.now();
        let events: Vec<Vec<Event>> = self
            .engines
            .iter_mut()
            .map(|e| {
                e.take_event_sink()
                    .map(|mut sink| sink.drain())
                    .unwrap_or_default()
            })
            .collect();
        let series: Vec<TimeSeries> = self
            .engines
            .iter_mut()
            .filter_map(|e| e.take_series().map(ador_telemetry::SeriesCollector::finish))
            .collect();
        let (tenant_goodput, goodput_interval) = match tcfg.series_interval {
            None => (Vec::new(), Seconds::ZERO),
            Some(interval) => {
                let mut completions: Vec<Vec<(Seconds, u64)>> =
                    vec![Vec::new(); self.classes.len()];
                for engine in &self.engines {
                    for o in engine.outcomes() {
                        let tenant = self.tenant_of[&o.request.id];
                        completions[tenant].push((
                            o.request.arrival + o.e2e,
                            conv::u64_from_usize(o.request.output_tokens),
                        ));
                    }
                }
                let per_tenant = completions
                    .iter()
                    .map(|c| goodput_series(c, interval, end))
                    .collect();
                (per_tenant, interval)
            }
        };
        Some(FleetTelemetry {
            events,
            series,
            tenant_goodput,
            goodput_interval,
        })
    }
}

impl std::fmt::Debug for ClusterSim<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterSim")
            .field("replicas", &self.engines.len())
            .field("policy", &self.cfg.policy)
            .field("offered", &self.offered)
            .field("completed", &self.completed())
            .field("rejected", &self.rejected())
            .finish()
    }
}

fn snapshot(engine: &Engine<'_>) -> ReplicaSnapshot {
    ReplicaSnapshot {
        queue_depth: engine.queue_depth(),
        active: engine.active_len(),
        kv_in_use: engine.kv_in_use(),
        backlog_tokens: engine.backlog_tokens(),
        kv_budget_tokens: engine.kv_budget_tokens(),
    }
}

#[cfg(test)]
mod tests {
    // tests may unwrap: a failed unwrap is exactly the test failing
    #![allow(clippy::unwrap_used)]

    use super::*;
    use ador_baselines::ador_table3;
    use ador_model::presets;

    fn two_class_mix(rate: f64) -> TenantMix {
        TenantMix::new(vec![
            TenantClass::chatbot(rate * 0.7),
            TenantClass::summarization(rate * 0.3),
        ])
    }

    #[test]
    fn fleet_completes_everything_without_admission_control() {
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let cfg = ClusterConfig::new(3, RouterPolicy::JoinShortestQueue);
        let report = ClusterSim::new(&arch, &model, Deployment::single_device(), cfg)
            .unwrap()
            .run(&two_class_mix(6.0), 90, 5)
            .unwrap();
        assert_eq!(report.submitted, 90);
        assert_eq!(report.completed, 90);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.replicas, 3);
        assert_eq!(report.assignments.len(), 90);
        assert!(report.fleet.is_some());
        let by_tenant: usize = report.tenants.iter().map(|t| t.completed).sum();
        assert_eq!(by_tenant, 90, "every outcome maps back to a tenant");
    }

    #[test]
    fn zero_replicas_is_an_error() {
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let err = ClusterSim::new(
            &arch,
            &model,
            Deployment::single_device(),
            ClusterConfig::new(0, RouterPolicy::RoundRobin),
        )
        .unwrap_err();
        assert_eq!(err, SimError::EmptyConfig);
    }

    #[test]
    fn queue_cap_sheds_under_overload() {
        let arch = ador_table3();
        let model = presets::llama3_8b();
        // One tiny replica, a flood of arrivals, and a 2-deep queue cap.
        let cfg = ClusterConfig::new(1, RouterPolicy::JoinShortestQueue)
            .with_engine(SimConfig::new(1.0, 4))
            .with_queue_cap(2);
        let report = ClusterSim::new(&arch, &model, Deployment::single_device(), cfg)
            .unwrap()
            .run(&two_class_mix(100.0), 80, 9)
            .unwrap();
        assert!(report.rejected > 0, "overload must shed");
        assert_eq!(report.completed + report.rejected, 80);
        let shed_tenants: usize = report.tenants.iter().map(|t| t.rejected).sum();
        assert_eq!(shed_tenants, report.rejected);
        // Shed requests appear as unassigned in the routing trace.
        let unassigned = report
            .assignments
            .iter()
            .filter(|(_, r)| r.is_none())
            .count();
        assert_eq!(unassigned, report.rejected);
    }

    #[test]
    fn untraced_fleets_carry_no_telemetry_and_traced_runs_change_nothing() {
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let mix = two_class_mix(6.0);
        let run = |telemetry: TelemetryConfig| {
            let cfg =
                ClusterConfig::new(2, RouterPolicy::JoinShortestQueue).with_telemetry(telemetry);
            ClusterSim::new(&arch, &model, Deployment::single_device(), cfg)
                .unwrap()
                .run(&mix, 60, 11)
                .unwrap()
        };
        let off = run(TelemetryConfig::OFF);
        assert!(off.telemetry.is_none());
        let mut on = run(TelemetryConfig::trace().with_series(Seconds::from_millis(50.0)));
        let telemetry = on.telemetry.take().expect("traced run carries telemetry");
        // Telemetry observes the run without perturbing it.
        assert_eq!(on, off);
        assert_eq!(telemetry.events.len(), 2);
        assert_eq!(telemetry.series.len(), 2);
        assert!(telemetry.events.iter().any(|e| !e.is_empty()));
        assert!(telemetry.series.iter().any(|s| !s.points.is_empty()));
        // One goodput lane per tenant, on the configured window.
        assert_eq!(telemetry.tenant_goodput.len(), 2);
        assert_eq!(telemetry.goodput_interval, Seconds::from_millis(50.0));
        let total: f64 = telemetry.tenant_goodput.iter().flatten().sum();
        assert!(total > 0.0, "completed tokens must show up as goodput");
    }

    #[test]
    fn shed_requests_are_stamped_in_the_chosen_replicas_trace() {
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let cfg = ClusterConfig::new(1, RouterPolicy::JoinShortestQueue)
            .with_engine(SimConfig::new(1.0, 4))
            .with_queue_cap(2)
            .with_telemetry(TelemetryConfig::trace());
        let report = ClusterSim::new(&arch, &model, Deployment::single_device(), cfg)
            .unwrap()
            .run(&two_class_mix(100.0), 80, 9)
            .unwrap();
        assert!(report.rejected > 0, "overload must shed");
        let telemetry = report.telemetry.expect("traced run carries telemetry");
        let sheds = telemetry.events[0]
            .iter()
            .filter(|e| e.kind == ador_telemetry::EventKind::Shed)
            .count();
        assert_eq!(sheds, report.rejected);
    }

    #[test]
    fn single_replica_fleet_matches_the_bare_engine() {
        // A 1-replica cluster with no admission control is exactly one
        // ServingSim run over the same stream.
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let mix = two_class_mix(4.0);
        let stream = mix.generate(50, 21);
        let engine_cfg = SimConfig::new(1.0, 64);

        let cfg = ClusterConfig::new(1, RouterPolicy::RoundRobin).with_engine(engine_cfg);
        let fleet = ClusterSim::new(&arch, &model, Deployment::single_device(), cfg)
            .unwrap()
            .run_stream(&mix, stream.clone())
            .unwrap();

        let (solo, _) = ServingSim::new(&arch, &model, Deployment::single_device(), engine_cfg)
            .unwrap()
            .run_requests(stream.into_iter().map(|cr| cr.request).collect())
            .unwrap();
        assert_eq!(fleet.fleet.as_ref(), Some(&solo));
        assert_eq!(fleet.per_replica[0].as_ref(), Some(&solo));
        assert_eq!(fleet.imbalance, 0.0);
    }
}
