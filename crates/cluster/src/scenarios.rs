//! Pinned reference scenarios, shared so the regression test
//! (`tests/cluster_serving.rs`), the `exp_cluster` bench table and the
//! `fleet_serving` example all exercise the *same* configuration — the
//! published numbers and the test that pins their ordering cannot drift
//! apart.

use ador_serving::SimConfig;

use crate::{ClusterConfig, RouterPolicy, TenantClass, TenantMix};

/// Aggregate arrival rate (req/s) of the pinned skewed-mix scenario.
pub const SKEWED_MIX_RATE: f64 = 7.0;

/// Request count of the pinned skewed-mix scenario.
pub const SKEWED_MIX_REQUESTS: usize = 600;

/// Workload seed of the pinned skewed-mix scenario.
pub const SKEWED_MIX_SEED: u64 = 3;

/// The skewed two-tenant mix: 70 % steady strict-SLO chat, 30 % bursty
/// MMPP summarization with heavy prompts.
pub fn skewed_two_tenant(aggregate: f64) -> TenantMix {
    TenantMix::new(vec![
        TenantClass::chatbot(aggregate * 0.7),
        TenantClass::summarization(aggregate * 0.3),
    ])
}

/// A fleet of 16-slot replicas whose KV memory is scarce (5 % fraction).
/// Scarce KV makes placement quality visible: stacking KV-heavy work on
/// one replica triggers preemption storms there, which is what separates
/// the adaptive router policies from round-robin.
pub fn scarce_kv_fleet(replicas: usize, policy: RouterPolicy) -> ClusterConfig {
    ClusterConfig::new(replicas, policy)
        .with_engine(SimConfig::new(1.0, 16).with_kv_memory_fraction(0.05))
}
