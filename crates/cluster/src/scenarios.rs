//! Pinned reference scenarios, shared so the regression test
//! (`tests/cluster_serving.rs`), the `exp_cluster` bench table and the
//! `fleet_serving` example all exercise the *same* configuration — the
//! published numbers and the test that pins their ordering cannot drift
//! apart.

use ador_hw::Architecture;
use ador_serving::{SimConfig, Slo, TraceProfile};
use ador_spec::{SpeculationConfig, SpeculationPolicy};
use ador_units::{conv, Bandwidth, Seconds};

use crate::{
    ArrivalProcess, ClusterConfig, DriveMode, FleetSpec, KvLink, ReplicaSpec, RouterPolicy,
    TenantClass, TenantMix,
};

/// Aggregate arrival rate (req/s) of the pinned skewed-mix scenario.
pub const SKEWED_MIX_RATE: f64 = 7.0;

/// Request count of the pinned skewed-mix scenario.
pub const SKEWED_MIX_REQUESTS: usize = 600;

/// Workload seed of the pinned skewed-mix scenario.
pub const SKEWED_MIX_SEED: u64 = 3;

/// The skewed two-tenant mix: 70 % steady strict-SLO chat, 30 % bursty
/// MMPP summarization with heavy prompts.
pub fn skewed_two_tenant(aggregate: f64) -> TenantMix {
    TenantMix::new(vec![
        TenantClass::chatbot(aggregate * 0.7),
        TenantClass::summarization(aggregate * 0.3),
    ])
}

/// A fleet of 16-slot replicas whose KV memory is scarce (5 % fraction).
/// Scarce KV makes placement quality visible: stacking KV-heavy work on
/// one replica triggers preemption storms there, which is what separates
/// the adaptive router policies from round-robin.
pub fn scarce_kv_fleet(replicas: usize, policy: RouterPolicy) -> ClusterConfig {
    ClusterConfig::new(replicas, policy)
        .with_engine(SimConfig::new(1.0, 16).with_kv_memory_fraction(0.05))
}

/// Aggregate request rate (req/s, turns not session starts) of the pinned
/// fleet session scenario: 4 replicas pushed past their cache-cold
/// capacity, so routing that preserves prefix reuse converts saved
/// prefill directly into SLO attainment.
pub const SESSION_RATE: f64 = 80.0;

/// Request rate of the pinned *single-engine* session scenario: moderate
/// load, where prefix caching shows up as TTFT rather than survival.
pub const SESSION_ENGINE_RATE: f64 = 3.0;

/// Request count of the pinned session scenario.
pub const SESSION_REQUESTS: usize = 500;

/// Workload seed of the pinned session scenario.
pub const SESSION_SEED: u64 = 11;

/// The pinned session workload: multi-turn chat conversations
/// ([`TenantClass::chat_sessions`]) whose follow-up turns re-prompt with
/// the whole conversation so far — the traffic class prefix caching and
/// cache-affinity routing exist for. Rescaled so the emitted *request*
/// rate (turns, not session starts) is `aggregate` req/s.
pub fn session_workload(aggregate: f64) -> TenantMix {
    TenantMix::new(vec![TenantClass::chat_sessions(1.0)]).with_aggregate_rate(aggregate)
}

/// A fleet of 32-slot prefix-caching replicas with a moderate KV budget
/// (25 % fraction): enough residency for session prefixes to survive
/// between turns, tight enough that retained prefixes face LRU pressure.
/// Shared by the `exp_prefix_cache` bench, the `session_serving` example
/// and the pinned tests in `tests/prefix_caching.rs`.
pub fn session_fleet(replicas: usize, policy: RouterPolicy) -> ClusterConfig {
    ClusterConfig::new(replicas, policy)
        .with_engine(SimConfig::new(1.0, 32).with_kv_memory_fraction(0.25))
        .with_prefix_caching(true)
}

/// Aggregate request rate (req/s) of the pinned speculative-decoding
/// fleet scenario: past the fleet's no-speculation knee, so the chatbot
/// class cannot hold its tight TBT contract without multi-token commits,
/// while naive fixed-depth drafting inflates every verify pass enough to
/// hurt — the operating point where SLO-customized depth separates from
/// both extremes.
pub const SPEC_RATE: f64 = 92.0;

/// Request count of the pinned speculative-decoding scenario.
pub const SPEC_REQUESTS: usize = 600;

/// Workload seed of the pinned speculative-decoding scenario.
pub const SPEC_SEED: u64 = 17;

/// Replica count of the pinned speculative-decoding fleet.
pub const SPEC_REPLICAS: usize = 2;

/// Draft-model cost ratio of the pinned speculative-decoding scenario:
/// each drafted token costs 15 % of a target token's step share — a
/// 7-to-8-B target with a ~1-B batched drafter.
pub const SPEC_DRAFT_RATIO: f64 = 0.15;

/// The pinned mixed-tenant speculation workload: a latency tenant
/// ("chatbot": short prompts, ~320-token responses, a tight 18 ms TBT /
/// 2 s TTFT contract, 0.85 draft acceptance — conversational text drafts
/// well) multiplexed with a throughput tenant ("analytics": batch
/// generation with ~512-token responses, TTFT-only 8 s contract, 0.55
/// acceptance — free-form generation drafts poorly). Short prompts and
/// long responses keep the decode batch large, which is exactly where
/// indiscriminate drafting stops being free: every drafted token rides a
/// compute-bound verify pass that all co-batched tenants pay for.
pub fn spec_mix(aggregate: f64) -> TenantMix {
    let chatbot_profile = TraceProfile {
        input_mu: 96.0_f64.ln(),
        input_sigma: 0.5,
        output_mu: 320.0_f64.ln(),
        output_sigma: 0.4,
        max_tokens: 2048,
    };
    let analytics_profile = TraceProfile {
        input_mu: 160.0_f64.ln(),
        input_sigma: 0.5,
        output_mu: 512.0_f64.ln(),
        output_sigma: 0.45,
        max_tokens: 4096,
    };
    let chatbot = TenantClass::new(
        "chatbot",
        chatbot_profile,
        Slo {
            ttft_max: Some(Seconds::from_millis(2000.0)),
            tbt_max: Some(Seconds::from_millis(18.0)),
        },
        ArrivalProcess::Poisson {
            rate: aggregate * 0.6,
        },
    )
    .with_acceptance(0.85);
    let analytics = TenantClass::new(
        "analytics",
        analytics_profile,
        Slo {
            ttft_max: Some(Seconds::from_millis(8000.0)),
            tbt_max: None,
        },
        ArrivalProcess::Poisson {
            rate: aggregate * 0.4,
        },
    )
    .with_acceptance(0.55);
    TenantMix::new(vec![chatbot, analytics])
}

/// The pinned speculative-decoding fleet: 256-slot replicas behind
/// join-shortest-queue, running the given speculation `policy` with the
/// pinned draft-cost ratio ([`SPEC_DRAFT_RATIO`]). Shared by the
/// `exp_specdec` bench, the `spec_serving` example and the pinned tests
/// in `tests/spec_decoding.rs`.
pub fn spec_fleet(replicas: usize, policy: SpeculationPolicy) -> ClusterConfig {
    ClusterConfig::new(replicas, RouterPolicy::JoinShortestQueue)
        .with_engine(SimConfig::new(1.0, 256))
        .with_speculation(SpeculationConfig::new(policy).with_draft_time_ratio(SPEC_DRAFT_RATIO))
}

/// Per-replica request rate (req/s) of the scale-grid scenario: each
/// replica sees the same offered load, so the aggregate rate grows
/// linearly with the fleet and cells are comparable across fleet sizes.
/// 6 req/s runs the 32-slot replicas near saturation — the bursty
/// summarization tenant queues tens of requests deep during ON periods,
/// yet the fleet still drains (makespan within ~25 % of the arrival
/// window). That regime is deliberate: deep-but-bounded queues are where
/// the lockstep driver's per-arrival all-replica snapshot rebuild (each
/// an O(queue) `backlog_tokens` scan) hurts most, which is exactly the
/// overhead the event core removes.
pub const SCALE_RATE_PER_REPLICA: f64 = 6.0;

/// Workload seed of the scale-grid scenario.
pub const SCALE_SEED: u64 = 23;

/// The scale-grid workload: the skewed two-tenant mix rescaled so each
/// of `replicas` replicas sees [`SCALE_RATE_PER_REPLICA`] req/s. Shared
/// by the `bench_cluster` wall-clock baseline and the event-vs-lockstep
/// equivalence tests so the measured grid and the pinned oracle exercise
/// the same traffic.
pub fn scale_mix(replicas: usize) -> TenantMix {
    skewed_two_tenant(SCALE_RATE_PER_REPLICA * conv::f64_from_usize(replicas))
}

/// The scale-grid fleet: 32-slot replicas with an ample KV budget behind
/// join-shortest-queue, driven in the given [`DriveMode`]. Paired with
/// [`scale_mix`], the fleet runs near saturation but always drains — the
/// wall-clock comparison measures driver overhead under realistic
/// bursty queueing, not a divergent backlog.
pub fn scale_fleet(replicas: usize, drive: DriveMode) -> ClusterConfig {
    ClusterConfig::new(replicas, RouterPolicy::JoinShortestQueue)
        .with_engine(SimConfig::new(1.0, 32))
        .with_drive_mode(drive)
}

/// Aggregate request rate (req/s) of the pinned disaggregation scenario:
/// near the 4-replica fleet's decode knee, so TBT contracts are only
/// holdable when prefill bursts stay out of the decode batches.
pub const DISAGG_RATE: f64 = 30.0;

/// Request count of the pinned disaggregation scenario.
pub const DISAGG_REQUESTS: usize = 400;

/// Workload seed of the pinned disaggregation scenario.
pub const DISAGG_SEED: u64 = 29;

/// Fleet size of the pinned disaggregation scenario — every candidate
/// (homogeneous or mixed) fields exactly this many replicas, so the
/// comparison is iso-count.
pub const DISAGG_REPLICAS: usize = 4;

/// The pinned disaggregation workload: an interactive class (mid-size
/// prompts, ~192-token responses, a tight 24 ms TBT contract) multiplexed
/// with a bursty document-ingest class (~3k-token prompts, short
/// responses, TTFT-only contract). Ingest prefill chunks are what blow
/// the interactive class's TBT whenever both phases share a batch —
/// the traffic shape prefill/decode disaggregation exists for.
pub fn disagg_mix(aggregate: f64) -> TenantMix {
    let interactive_profile = TraceProfile {
        input_mu: 768.0_f64.ln(),
        input_sigma: 0.5,
        output_mu: 192.0_f64.ln(),
        output_sigma: 0.4,
        max_tokens: 2048,
    };
    let ingest_profile = TraceProfile {
        input_mu: 3072.0_f64.ln(),
        input_sigma: 0.4,
        output_mu: 64.0_f64.ln(),
        output_sigma: 0.5,
        max_tokens: 8192,
    };
    let interactive = TenantClass::new(
        "interactive",
        interactive_profile,
        Slo {
            ttft_max: Some(Seconds::from_millis(2500.0)),
            tbt_max: Some(Seconds::from_millis(24.0)),
        },
        ArrivalProcess::Poisson {
            rate: aggregate * 0.65,
        },
    );
    let mean_on = Seconds::new(3.0);
    let mean_off = Seconds::new(9.0);
    let duty = mean_on.get() / (mean_on.get() + mean_off.get());
    let ingest = TenantClass::new(
        "ingest",
        ingest_profile,
        Slo {
            ttft_max: Some(Seconds::from_millis(8000.0)),
            tbt_max: None,
        },
        ArrivalProcess::OnOffMmpp {
            rate_on: aggregate * 0.35 / duty,
            mean_on,
            mean_off,
        },
    );
    TenantMix::new(vec![interactive, ingest])
}

/// The pinned KV interconnect: a 64 GB/s point-to-point link with 0.5 ms
/// setup latency — NVLink-class bandwidth, rack-scale latency. Moving a
/// 3k-token LLaMA3-8B context (~128 KiB/token) costs ~6 ms on top of the
/// latency, small against second-scale TTFT contracts but real enough
/// that the transfer accounting is exercised.
pub fn disagg_link() -> KvLink {
    KvLink::new(Bandwidth::from_gbps(64.0), Seconds::from_millis(0.5))
}

/// The pinned per-replica engine config of the disaggregation scenario:
/// 64-slot replicas with the default KV budget.
pub fn disagg_engine() -> SimConfig {
    SimConfig::new(1.0, 64)
}

/// A two-pool fleet for the pinned disaggregation scenario:
/// `prefill_count` replicas of `prefill` feeding `decode_count` replicas
/// of `decode`, all running [`disagg_engine`]. Architectures are passed
/// in (conventionally `ador_baselines::prefill_optimized()` /
/// `decode_optimized()`) so this crate stays baseline-agnostic.
pub fn disagg_fleet(
    prefill: &Architecture,
    prefill_count: usize,
    decode: &Architecture,
    decode_count: usize,
) -> FleetSpec {
    FleetSpec::prefill_decode(
        &ReplicaSpec::new(prefill.clone(), disagg_engine()),
        prefill_count,
        &ReplicaSpec::new(decode.clone(), disagg_engine()),
        decode_count,
    )
}

/// The pinned cluster config of the disaggregation scenario: prefill-side
/// join-shortest-queue, decode-side least-KV-load, over [`disagg_link`]
/// when `disaggregated` (aggregated otherwise — the baseline topology the
/// mixes are judged against).
pub fn disagg_cluster(disaggregated: bool) -> ClusterConfig {
    let cfg = ClusterConfig::new(0, RouterPolicy::JoinShortestQueue)
        .with_decode_policy(RouterPolicy::LeastKvLoad);
    if disaggregated {
        cfg.with_disaggregation(disagg_link())
    } else {
        cfg
    }
}

/// The pinned *single-engine* speculation config: the `exp_specdec`
/// fixed-depth sweep (one 32-slot engine on ultrachat-like chatbot
/// traffic at 8 req/s, acceptance swept explicitly). At this moderate
/// batch the decode pass is weight-bound, so verification is cheap and
/// any positive depth with decent acceptance buys mean TBT — the pin for
/// "Fixed(k > 0) beats Off at acceptance ≥ 0.7".
pub fn spec_engine_config(policy: SpeculationPolicy, acceptance: f64) -> SimConfig {
    SimConfig::new(8.0, 32)
        .with_requests(300)
        .with_seed(7)
        .with_speculation(
            SpeculationConfig::new(policy)
                .with_draft_time_ratio(SPEC_DRAFT_RATIO)
                .with_default_acceptance(acceptance),
        )
}
