//! Pinned reference scenarios, shared so the regression test
//! (`tests/cluster_serving.rs`), the `exp_cluster` bench table and the
//! `fleet_serving` example all exercise the *same* configuration — the
//! published numbers and the test that pins their ordering cannot drift
//! apart.

use ador_serving::SimConfig;

use crate::{ClusterConfig, RouterPolicy, TenantClass, TenantMix};

/// Aggregate arrival rate (req/s) of the pinned skewed-mix scenario.
pub const SKEWED_MIX_RATE: f64 = 7.0;

/// Request count of the pinned skewed-mix scenario.
pub const SKEWED_MIX_REQUESTS: usize = 600;

/// Workload seed of the pinned skewed-mix scenario.
pub const SKEWED_MIX_SEED: u64 = 3;

/// The skewed two-tenant mix: 70 % steady strict-SLO chat, 30 % bursty
/// MMPP summarization with heavy prompts.
pub fn skewed_two_tenant(aggregate: f64) -> TenantMix {
    TenantMix::new(vec![
        TenantClass::chatbot(aggregate * 0.7),
        TenantClass::summarization(aggregate * 0.3),
    ])
}

/// A fleet of 16-slot replicas whose KV memory is scarce (5 % fraction).
/// Scarce KV makes placement quality visible: stacking KV-heavy work on
/// one replica triggers preemption storms there, which is what separates
/// the adaptive router policies from round-robin.
pub fn scarce_kv_fleet(replicas: usize, policy: RouterPolicy) -> ClusterConfig {
    ClusterConfig::new(replicas, policy)
        .with_engine(SimConfig::new(1.0, 16).with_kv_memory_fraction(0.05))
}

/// Aggregate request rate (req/s, turns not session starts) of the pinned
/// fleet session scenario: 4 replicas pushed past their cache-cold
/// capacity, so routing that preserves prefix reuse converts saved
/// prefill directly into SLO attainment.
pub const SESSION_RATE: f64 = 80.0;

/// Request rate of the pinned *single-engine* session scenario: moderate
/// load, where prefix caching shows up as TTFT rather than survival.
pub const SESSION_ENGINE_RATE: f64 = 3.0;

/// Request count of the pinned session scenario.
pub const SESSION_REQUESTS: usize = 500;

/// Workload seed of the pinned session scenario.
pub const SESSION_SEED: u64 = 11;

/// The pinned session workload: multi-turn chat conversations
/// ([`TenantClass::chat_sessions`]) whose follow-up turns re-prompt with
/// the whole conversation so far — the traffic class prefix caching and
/// cache-affinity routing exist for. Rescaled so the emitted *request*
/// rate (turns, not session starts) is `aggregate` req/s.
pub fn session_workload(aggregate: f64) -> TenantMix {
    TenantMix::new(vec![TenantClass::chat_sessions(1.0)]).with_aggregate_rate(aggregate)
}

/// A fleet of 32-slot prefix-caching replicas with a moderate KV budget
/// (25 % fraction): enough residency for session prefixes to survive
/// between turns, tight enough that retained prefixes face LRU pressure.
/// Shared by the `exp_prefix_cache` bench, the `session_serving` example
/// and the pinned tests in `tests/prefix_caching.rs`.
pub fn session_fleet(replicas: usize, policy: RouterPolicy) -> ClusterConfig {
    ClusterConfig::new(replicas, policy)
        .with_engine(SimConfig::new(1.0, 32).with_kv_memory_fraction(0.25))
        .with_prefix_caching(true)
}
