//! Multi-tenant traffic: SLO classes, arrival processes, and the
//! deterministic merged request stream a cluster serves.
//!
//! A [`TenantClass`] bundles what distinguishes one traffic class from
//! another in a production fleet: its token-length marginals
//! ([`TraceProfile`]), its latency contract ([`Slo`]), and its arrival
//! process (steady Poisson or bursty on/off MMPP). A [`TenantMix`]
//! multiplexes several classes into one seeded, arrival-sorted
//! [`ClusterRequest`] stream.
//!
//! Classes with a [`SessionShape`] emit multi-turn conversations instead
//! of one-shot requests: each arrival starts a session whose follow-up
//! turns re-prompt with the full previous context plus a fresh user
//! message, tagged with one `prefix_group` per session — the workload
//! whose growing shared prefixes a prefix-caching engine
//! ([`ador_serving::SimConfig::prefix_caching`]) exploits.

use ador_serving::{Request, Slo, TraceProfile};
use ador_units::{conv, Seconds};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// A request tagged with the tenant class that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ClusterRequest {
    /// The underlying serving request.
    pub request: Request,
    /// Index of the issuing class within its [`TenantMix`].
    pub tenant: usize,
}

/// How a tenant's requests arrive over time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at a constant mean rate (req/s) — the paper's
    /// Fig. 14b request generator.
    Poisson {
        /// Mean arrival rate, req/s.
        rate: f64,
    },
    /// A two-state Markov-modulated Poisson process: exponential ON
    /// sojourns emitting Poisson arrivals at `rate_on`, alternating with
    /// silent exponential OFF sojourns. Models bursty tenants (batch jobs,
    /// diurnal spikes) whose time-averaged rate understates their peaks.
    OnOffMmpp {
        /// Arrival rate while ON, req/s.
        rate_on: f64,
        /// Mean ON-sojourn duration.
        mean_on: Seconds,
        /// Mean OFF-sojourn duration.
        mean_off: Seconds,
    },
}

impl ArrivalProcess {
    /// The long-run mean arrival rate in req/s (for MMPP, the ON rate
    /// scaled by the ON duty cycle).
    pub fn mean_rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate } => rate,
            ArrivalProcess::OnOffMmpp {
                rate_on,
                mean_on,
                mean_off,
            } => rate_on * mean_on.get() / (mean_on.get() + mean_off.get()),
        }
    }

    /// Scales the mean rate by `factor`, preserving the burst structure
    /// (MMPP sojourn durations are untouched; only the ON rate scales).
    pub fn scaled(self, factor: f64) -> Self {
        match self {
            ArrivalProcess::Poisson { rate } => ArrivalProcess::Poisson {
                rate: rate * factor,
            },
            ArrivalProcess::OnOffMmpp {
                rate_on,
                mean_on,
                mean_off,
            } => ArrivalProcess::OnOffMmpp {
                rate_on: rate_on * factor,
                mean_on,
                mean_off,
            },
        }
    }

    /// Draws `count` arrival times from simulation start.
    fn sample_arrivals(&self, rng: &mut StdRng, count: usize) -> Vec<Seconds> {
        let mut arrivals = Vec::with_capacity(count);
        match *self {
            ArrivalProcess::Poisson { rate } => {
                let mut now = 0.0;
                for _ in 0..count {
                    now += exp_sample(rng, 1.0 / rate);
                    arrivals.push(Seconds::new(now));
                }
            }
            ArrivalProcess::OnOffMmpp {
                rate_on,
                mean_on,
                mean_off,
            } => {
                let mut now = 0.0;
                let mut on_end = exp_sample(rng, mean_on.get());
                while arrivals.len() < count {
                    // Exponential gaps are memoryless, so redrawing after a
                    // state boundary keeps the process exact.
                    let gap = exp_sample(rng, 1.0 / rate_on);
                    if now + gap <= on_end {
                        now += gap;
                        arrivals.push(Seconds::new(now));
                    } else {
                        now = on_end + exp_sample(rng, mean_off.get());
                        on_end = now + exp_sample(rng, mean_on.get());
                    }
                }
            }
        }
        arrivals
    }

    fn validate(&self) {
        let ok = match *self {
            ArrivalProcess::Poisson { rate } => rate.is_finite() && rate > 0.0,
            ArrivalProcess::OnOffMmpp {
                rate_on,
                mean_on,
                mean_off,
            } => {
                rate_on.is_finite() && rate_on > 0.0 && mean_on.get() > 0.0 && mean_off.get() >= 0.0
            }
        };
        assert!(ok, "arrival process must have positive rates: {self:?}");
    }
}

fn exp_sample(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -u.ln() * mean
}

/// The shape of a class's multi-turn sessions.
///
/// Each arrival of the class's [`ArrivalProcess`] starts a *session*: a
/// geometric number of turns, each prompting with the full previous
/// context (previous prompt plus previous response) extended by a fresh
/// user message, after an exponential think-time gap. All turns of one
/// session carry the same
/// [`Request::prefix_group`](ador_serving::Request::prefix_group), so a
/// prefix-caching engine can skip re-prefilling the shared history.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SessionShape {
    /// Mean turns per session (geometric, so sessions of length 1 remain
    /// common). Must be ≥ 1.
    pub mean_turns: f64,
    /// Mean think time between a turn's arrival and the next turn's
    /// arrival (exponential). Open-loop: the gap models the user reading
    /// the response and typing, independent of service latency.
    pub mean_think: Seconds,
    /// Token-length marginals of follow-up user messages (only the
    /// `input` marginal is sampled; first-turn prompts and every turn's
    /// response come from the class [`TraceProfile`]).
    pub followup: TraceProfile,
}

impl SessionShape {
    /// Interactive chat sessions: 4 turns on average, 8 s mean think
    /// time, follow-up messages with a median of ~80 tokens.
    pub fn chat() -> Self {
        Self {
            mean_turns: 4.0,
            mean_think: Seconds::new(8.0),
            followup: TraceProfile {
                input_mu: 80.0_f64.ln(),
                input_sigma: 0.7,
                output_mu: 0.0,
                output_sigma: 0.0,
                max_tokens: 1024,
            },
        }
    }

    fn validate(&self) {
        assert!(
            self.mean_turns >= 1.0 && self.mean_turns.is_finite(),
            "sessions need a mean of at least one turn: {self:?}"
        );
        assert!(
            self.mean_think.get() >= 0.0,
            "think time cannot be negative: {self:?}"
        );
    }

    /// Draws a session length: 1 + Geometric(p) with `p = 1/mean_turns`,
    /// so the mean is `mean_turns` and single-turn sessions stay common.
    fn sample_turns(&self, rng: &mut StdRng) -> usize {
        if self.mean_turns <= 1.0 {
            return 1;
        }
        let p = 1.0 / self.mean_turns;
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        // Inverse-CDF of the geometric distribution on {0, 1, ...}.
        1 + conv::usize_from_f64((u.ln() / (1.0 - p).ln()).floor())
    }
}

/// One traffic class: a name, token-length marginals, an SLO contract and
/// an arrival process.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TenantClass {
    /// Human-readable class name (report labels).
    pub name: String,
    /// Prompt/response token-length marginals.
    pub profile: TraceProfile,
    /// The latency contract this class's requests are judged against.
    pub slo: Slo,
    /// The class's arrival process.
    pub arrivals: ArrivalProcess,
    /// Multi-turn session structure; `None` means one-shot requests.
    /// When set, arrivals are session *starts* and the emitted request
    /// rate is roughly `mean_turns` times the arrival rate.
    pub session: Option<SessionShape>,
    /// The class's speculative-decoding acceptance profile: the per-token
    /// probability a draft model's proposal survives verification on this
    /// traffic (AdaServe's per-class speculation signal — templated code
    /// completions draft far better than free-form prose). Stamped onto
    /// every generated request; only read by engines that speculate.
    pub accept_rate: f64,
}

impl TenantClass {
    /// Creates a class, validating the arrival process.
    ///
    /// # Panics
    ///
    /// Panics if the arrival process has a non-positive rate.
    pub fn new(
        name: impl Into<String>,
        profile: TraceProfile,
        slo: Slo,
        arrivals: ArrivalProcess,
    ) -> Self {
        arrivals.validate();
        Self {
            name: name.into(),
            profile,
            slo,
            arrivals,
            session: None,
            accept_rate: ador_spec::DEFAULT_ACCEPTANCE,
        }
    }

    /// Sets the class's draft acceptance profile for speculative decoding.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ rate ≤ 1`.
    pub fn with_acceptance(mut self, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "acceptance must be a probability, got {rate}"
        );
        self.accept_rate = rate;
        self
    }

    /// Turns the class into a session workload: each arrival starts a
    /// multi-turn conversation of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape's mean turn count is below 1 or its think time
    /// is negative.
    pub fn with_sessions(mut self, shape: SessionShape) -> Self {
        shape.validate();
        self.session = Some(shape);
        self
    }

    /// Multi-turn chatbot sessions: ultrachat-like first prompts and
    /// responses, the paper's strict SLO, Poisson session starts at
    /// `rate` sessions/s, and [`SessionShape::chat`] turn structure. The
    /// flagship prefix-caching workload: every follow-up turn re-prompts
    /// with the whole conversation so far.
    pub fn chat_sessions(rate: f64) -> Self {
        Self::chatbot(rate).with_sessions(SessionShape::chat())
    }

    /// Interactive chatbot traffic: ultrachat-like lengths, the paper's
    /// strict SLO (25 ms TBT), steady Poisson arrivals, and a 0.8 draft
    /// acceptance profile (conversational prose drafts well).
    pub fn chatbot(rate: f64) -> Self {
        Self::new(
            "chatbot",
            TraceProfile::ultrachat_like(),
            Slo::strict(),
            ArrivalProcess::Poisson { rate },
        )
        .with_acceptance(0.8)
    }

    /// Long-document summarization: heavy prompts, the paper's relaxed SLO
    /// (50 ms TBT), and bursty on/off MMPP arrivals (4 s ON spells at 4×
    /// the mean rate, 12 s OFF) — batch-style traffic whose peaks stress
    /// the fleet far beyond its time-averaged rate.
    pub fn summarization(mean_rate: f64) -> Self {
        let mean_on = Seconds::new(4.0);
        let mean_off = Seconds::new(12.0);
        let duty = mean_on.get() / (mean_on.get() + mean_off.get());
        Self::new(
            "summarization",
            TraceProfile::summarization(),
            Slo::relaxed(),
            ArrivalProcess::OnOffMmpp {
                rate_on: mean_rate / duty,
                mean_on,
                mean_off,
            },
        )
        // Dense novel prose: a draft model mispredicts often, so fixed
        // fleet-wide speculation burns verify compute on this class.
        .with_acceptance(0.6)
    }

    /// Code completion: mid-size prompts, very short responses, and the
    /// tightest contract of the three presets (400 ms TTFT / 25 ms TBT —
    /// an editor keystroke cannot wait for a queue).
    pub fn code_completion(rate: f64) -> Self {
        let profile = TraceProfile {
            input_mu: 512.0_f64.ln(),
            input_sigma: 0.8,
            output_mu: 32.0_f64.ln(),
            output_sigma: 0.6,
            max_tokens: 2048,
        };
        let slo = Slo {
            ttft_max: Some(Seconds::from_millis(400.0)),
            tbt_max: Some(Seconds::from_millis(25.0)),
        };
        Self::new(
            "code-completion",
            profile,
            slo,
            ArrivalProcess::Poisson { rate },
        )
        // Boilerplate-heavy code drafts extremely well (AdaServe).
        .with_acceptance(0.9)
    }
}

/// A multiplex of tenant classes: the workload a cluster serves.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TenantMix {
    classes: Vec<TenantClass>,
}

impl TenantMix {
    /// Creates a mix.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is empty.
    pub fn new(classes: Vec<TenantClass>) -> Self {
        assert!(!classes.is_empty(), "a tenant mix needs at least one class");
        Self { classes }
    }

    /// The classes in index order (the index is the `tenant` tag on
    /// generated requests).
    pub fn classes(&self) -> &[TenantClass] {
        &self.classes
    }

    /// The combined long-run mean **request** rate, req/s. For session
    /// classes each arrival is a session start that fans out into
    /// `mean_turns` requests on average, so it contributes
    /// `mean_rate × mean_turns`.
    pub fn aggregate_rate(&self) -> f64 {
        self.classes
            .iter()
            .map(|c| c.arrivals.mean_rate() * c.session.map_or(1.0, |s| s.mean_turns))
            .sum()
    }

    /// Rescales every class's arrival process so the aggregate mean rate
    /// becomes `total` req/s, preserving the per-class traffic shares and
    /// burst structure. This is the knob `cluster_capacity` bisects.
    pub fn with_aggregate_rate(mut self, total: f64) -> Self {
        let current = self.aggregate_rate();
        assert!(
            total > 0.0 && current > 0.0,
            "aggregate rates must be positive"
        );
        let factor = total / current;
        for class in &mut self.classes {
            class.arrivals = class.arrivals.scaled(factor);
        }
        self
    }

    /// Generates the first `count` requests of the multiplexed stream:
    /// each class draws its own seeded arrival/length sequence (session
    /// classes expand each arrival into a multi-turn conversation with a
    /// growing, `prefix_group`-tagged context), the per-class streams
    /// merge by arrival time, and ids are assigned in merged order
    /// (`0..count`). Fully deterministic under `seed`.
    pub fn generate(&self, count: usize, seed: u64) -> Vec<ClusterRequest> {
        let mut merged: Vec<(Seconds, usize, usize, usize, Option<u64>)> = Vec::new();
        for (tenant, class) in self.classes.iter().enumerate() {
            // Decorrelate classes with a per-class seed; any class alone
            // can supply the whole truncated stream (sessions yield at
            // least one turn per arrival), so `count` draws each is
            // always enough.
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(
                (conv::u64_from_usize(tenant) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ));
            let starts = class.arrivals.sample_arrivals(&mut rng, count);
            match class.session {
                None => {
                    for arrival in starts {
                        let input = class.profile.sample_input(&mut rng);
                        let output = class.profile.sample_output(&mut rng);
                        merged.push((arrival, tenant, input, output, None));
                    }
                }
                Some(shape) => {
                    for (session, start) in starts.into_iter().enumerate() {
                        let group = session_group(seed, tenant, session);
                        let turns = shape.sample_turns(&mut rng);
                        let mut arrival = start;
                        let mut context = 0usize;
                        for _ in 0..turns {
                            // Follow-up turns re-prompt with the full
                            // previous context plus a fresh user message.
                            let fresh = if context == 0 {
                                class.profile.sample_input(&mut rng)
                            } else {
                                shape.followup.sample_input(&mut rng)
                            };
                            let input = (context + fresh).min(class.profile.max_tokens.max(1));
                            let output = class.profile.sample_output(&mut rng);
                            merged.push((arrival, tenant, input, output, Some(group)));
                            context = input + output;
                            if context + 1 >= class.profile.max_tokens {
                                // Context window exhausted: end the session.
                                break;
                            }
                            arrival += Seconds::new(exp_sample(&mut rng, shape.mean_think.get()));
                        }
                    }
                }
            }
        }
        merged.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                // ador-lint: allow(panic) — invariant: arrivals are finite draws from the workload
                .expect("arrival times are never NaN")
                .then(a.1.cmp(&b.1))
        });
        merged
            .into_iter()
            .take(count)
            .enumerate()
            .map(|(id, (arrival, tenant, input, output, group))| {
                // Every request carries its class's contract and draft
                // acceptance profile: the SLO feeds goodput accounting
                // and SLO-adaptive speculation depth, the acceptance rate
                // the seeded verify draws.
                let class = &self.classes[tenant];
                ClusterRequest {
                    request: Request {
                        prefix_group: group,
                        ..Request::new(conv::u64_from_usize(id), arrival, input, output)
                    }
                    .with_slo(class.slo)
                    .with_accept_rate(class.accept_rate),
                    tenant,
                }
            })
            .collect()
    }
}

/// Deterministic, collision-resistant session identity (splitmix64 over
/// the seed/tenant/session triple): the `prefix_group` every turn of one
/// session carries.
fn session_group(seed: u64, tenant: usize, session: usize) -> u64 {
    ador_serving::splitmix64(
        seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((conv::u64_from_usize(tenant) + 1).wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add((conv::u64_from_usize(session) + 1).wrapping_mul(0x94D0_49BB_1331_11EB)),
    )
}

#[cfg(test)]
mod tests {
    // tests may unwrap: a failed unwrap is exactly the test failing
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn poisson_mean_rate_is_the_rate() {
        let p = ArrivalProcess::Poisson { rate: 7.5 };
        assert_eq!(p.mean_rate(), 7.5);
    }

    #[test]
    fn mmpp_mean_rate_uses_duty_cycle() {
        let p = ArrivalProcess::OnOffMmpp {
            rate_on: 8.0,
            mean_on: Seconds::new(1.0),
            mean_off: Seconds::new(3.0),
        };
        assert!((p.mean_rate() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mmpp_arrivals_converge_to_the_mean_rate() {
        let p = ArrivalProcess::OnOffMmpp {
            rate_on: 20.0,
            mean_on: Seconds::new(2.0),
            mean_off: Seconds::new(6.0),
        };
        let mut rng = StdRng::seed_from_u64(7);
        let arrivals = p.sample_arrivals(&mut rng, 8000);
        let span = arrivals.last().unwrap().get();
        let measured = arrivals.len() as f64 / span;
        assert!(
            (measured - p.mean_rate()).abs() / p.mean_rate() < 0.15,
            "measured {measured:.2} vs mean {:.2}",
            p.mean_rate()
        );
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn mmpp_is_burstier_than_poisson_at_equal_mean_rate() {
        // Squared coefficient of variation of inter-arrival gaps: 1 for
        // Poisson, > 1 for an on/off MMPP.
        let cv2 = |p: &ArrivalProcess| {
            let mut rng = StdRng::seed_from_u64(11);
            let arrivals = p.sample_arrivals(&mut rng, 6000);
            let gaps: Vec<f64> = arrivals.windows(2).map(|w| (w[1] - w[0]).get()).collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
            var / (mean * mean)
        };
        let poisson = cv2(&ArrivalProcess::Poisson { rate: 2.0 });
        let mmpp = cv2(&ArrivalProcess::OnOffMmpp {
            rate_on: 8.0,
            mean_on: Seconds::new(1.0),
            mean_off: Seconds::new(3.0),
        });
        assert!((poisson - 1.0).abs() < 0.25, "poisson cv² {poisson:.2}");
        assert!(mmpp > 1.5, "mmpp cv² {mmpp:.2} should be super-Poisson");
    }

    #[test]
    fn generated_stream_is_deterministic_and_sorted() {
        let mix = TenantMix::new(vec![
            TenantClass::chatbot(4.0),
            TenantClass::summarization(1.0),
        ]);
        let a = mix.generate(200, 42);
        let b = mix.generate(200, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
        assert!(a
            .windows(2)
            .all(|w| w[0].request.arrival <= w[1].request.arrival));
        // Ids are the merged order.
        assert!(a.iter().enumerate().all(|(i, r)| r.request.id == i as u64));
        // Both classes contribute.
        assert!(a.iter().any(|r| r.tenant == 0));
        assert!(a.iter().any(|r| r.tenant == 1));
        let c = mix.generate(200, 43);
        assert_ne!(a, c, "the seed must reach every class's stream");
    }

    #[test]
    fn generated_requests_carry_class_slo_and_acceptance() {
        let mix = TenantMix::new(vec![
            TenantClass::chatbot(4.0),
            TenantClass::summarization(1.0),
            TenantClass::code_completion(2.0).with_acceptance(0.95),
        ]);
        assert_eq!(mix.classes()[0].accept_rate, 0.8);
        assert_eq!(mix.classes()[1].accept_rate, 0.6);
        for cr in mix.generate(150, 5) {
            let class = &mix.classes()[cr.tenant];
            assert_eq!(cr.request.slo, Some(class.slo));
            assert_eq!(cr.request.accept_rate, Some(class.accept_rate));
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn non_probability_acceptance_rejected() {
        let _ = TenantClass::chatbot(1.0).with_acceptance(-0.1);
    }

    #[test]
    fn rescaling_preserves_shares() {
        let mix = TenantMix::new(vec![
            TenantClass::chatbot(6.0),
            TenantClass::summarization(2.0),
        ]);
        let scaled = mix.clone().with_aggregate_rate(16.0);
        assert!((scaled.aggregate_rate() - 16.0).abs() < 1e-9);
        let share = |m: &TenantMix| m.classes()[0].arrivals.mean_rate() / m.aggregate_rate();
        assert!((share(&mix) - share(&scaled)).abs() < 1e-9);
        // Burst structure is preserved: sojourn times untouched.
        match (mix.classes()[1].arrivals, scaled.classes()[1].arrivals) {
            (
                ArrivalProcess::OnOffMmpp {
                    mean_on: a,
                    mean_off: b,
                    ..
                },
                ArrivalProcess::OnOffMmpp {
                    mean_on: c,
                    mean_off: d,
                    ..
                },
            ) => {
                assert_eq!(a, c);
                assert_eq!(b, d);
            }
            _ => panic!("summarization preset must be MMPP"),
        }
    }

    #[test]
    fn session_turns_share_a_group_and_grow_their_context() {
        let mix = TenantMix::new(vec![TenantClass::chat_sessions(2.0)]);
        let stream = mix.generate(300, 7);
        assert_eq!(stream.len(), 300);
        // Every request belongs to a session.
        assert!(stream.iter().all(|r| r.request.prefix_group.is_some()));

        // Group turns by session and check the multi-turn structure.
        // BTreeMap so the per-session checks below run in a defined
        // order (the determinism contract applies to tests too).
        let mut by_group: std::collections::BTreeMap<u64, Vec<&ClusterRequest>> =
            std::collections::BTreeMap::new();
        for r in &stream {
            by_group
                .entry(r.request.prefix_group.unwrap())
                .or_default()
                .push(r);
        }
        let mut multi_turn = 0usize;
        for turns in by_group.values() {
            let mut turns = turns.clone();
            turns.sort_by(|a, b| a.request.arrival.partial_cmp(&b.request.arrival).unwrap());
            if turns.len() > 1 {
                multi_turn += 1;
            }
            for pair in turns.windows(2) {
                let (prev, next) = (&pair[0].request, &pair[1].request);
                // A follow-up prompt strictly extends the full previous
                // context (prompt + response) with new user tokens; the
                // session ends before the context window would overflow.
                assert!(
                    next.input_tokens > prev.input_tokens + prev.output_tokens,
                    "follow-up prompt {} must extend the previous context {}",
                    next.input_tokens,
                    prev.input_tokens + prev.output_tokens
                );
            }
        }
        assert!(
            multi_turn * 2 >= by_group.len(),
            "a mean of 4 turns must yield many multi-turn sessions \
             ({multi_turn} of {})",
            by_group.len()
        );

        // Deterministic under the seed, different under another.
        assert_eq!(stream, mix.generate(300, 7));
        assert_ne!(stream, mix.generate(300, 8));
    }

    #[test]
    fn session_rate_counts_turns_not_starts() {
        let one_shot = TenantMix::new(vec![TenantClass::chatbot(2.0)]);
        let sessions = TenantMix::new(vec![TenantClass::chat_sessions(2.0)]);
        assert!((one_shot.aggregate_rate() - 2.0).abs() < 1e-12);
        assert!(
            (sessions.aggregate_rate() - 8.0).abs() < 1e-12,
            "4 turns avg"
        );
        // Rescaling still lands on the requested request rate.
        let scaled = sessions.clone().with_aggregate_rate(4.0);
        assert!((scaled.aggregate_rate() - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one turn")]
    fn sub_single_turn_sessions_rejected() {
        let _ = TenantClass::chatbot(1.0).with_sessions(SessionShape {
            mean_turns: 0.5,
            ..SessionShape::chat()
        });
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn empty_mix_rejected() {
        let _ = TenantMix::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "positive rates")]
    fn zero_rate_class_rejected() {
        let _ = TenantClass::chatbot(0.0);
    }
}
