//! The cluster front door: pluggable request-to-replica routing policies.

use std::collections::BTreeMap;
use std::fmt;

use ador_units::conv;
use serde::Serialize;

/// Which replica a router hands each arriving request to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub enum RouterPolicy {
    /// Cycle through replicas in submission order, ignoring load. The
    /// baseline every adaptive policy is judged against: it balances
    /// request *counts*, not *work*, so heavy-tailed and bursty traffic
    /// leaves some replicas drowning while others idle.
    #[default]
    RoundRobin,
    /// Send each request to the replica with the fewest requests in its
    /// system (queued + admitted). Classic adaptive load balancing; reacts
    /// to queue buildup regardless of what caused it.
    JoinShortestQueue,
    /// Send each request to the replica with the lowest KV-cache demand:
    /// resident tokens plus the committed backlog (queued prompts and
    /// unfinished prefills), relative to the replica's KV budget. Token
    /// demand tracks *work* rather than request count, so long-context
    /// stragglers repel new work even when their queues look short —
    /// and counting the backlog (not just residency, which lags while a
    /// burst's prefills land) avoids herding whole bursts onto whichever
    /// replica happened to look empty.
    LeastKvLoad,
    /// Partition replicas among SLO classes (replica `r` serves class
    /// `r mod classes`) and join the shortest queue within the partition,
    /// falling back to fleet-wide shortest-queue for classes with no
    /// replicas of their own. Isolates latency-critical tenants from
    /// bursty batch traffic at the cost of statistical multiplexing.
    SloAware,
    /// Sticky session routing for prefix-cache locality: a request whose
    /// [`prefix_group`](ador_serving::Request::prefix_group) was seen
    /// before goes back to the replica that served the session's earlier
    /// turns — the replica whose prefix cache holds the session's context
    /// (reuse is strictly per-replica). Ungrouped requests, first turns,
    /// and turns whose sticky replica has fallen more than
    /// [`AFFINITY_SPILL`] of a KV budget behind the least-loaded replica
    /// fall back to [`RouterPolicy::LeastKvLoad`] (spilled sessions are
    /// re-pinned to the new replica, where their prefix is rebuilt).
    CacheAffinity,
}

/// How much more KV demand (as a fraction of one replica's budget) the
/// sticky replica of a session may carry than the least-loaded replica
/// before [`RouterPolicy::CacheAffinity`] gives up cache locality and
/// spills the session: losing a prefix costs one re-prefill, while
/// queueing behind a saturated replica costs every subsequent request.
pub const AFFINITY_SPILL: f64 = 0.5;

/// Upper bound on live [`RouterPolicy::CacheAffinity`] pins. When the
/// table would grow past this, pins not used within the last
/// `AFFINITY_PIN_CAP` routing decisions are pruned — those sessions are
/// long ended (or their prefixes long evicted), so dropping the pin
/// costs at most one re-prefill. Keeps router memory bounded by recent
/// traffic instead of total sessions ever served.
pub const AFFINITY_PIN_CAP: usize = 1 << 16;

impl fmt::Display for RouterPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            RouterPolicy::RoundRobin => "round-robin",
            RouterPolicy::JoinShortestQueue => "join-shortest-queue",
            RouterPolicy::LeastKvLoad => "least-kv-load",
            RouterPolicy::SloAware => "slo-aware",
            RouterPolicy::CacheAffinity => "cache-affinity",
        };
        f.write_str(name)
    }
}

/// A replica's load state at a routing decision point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ReplicaSnapshot {
    /// Requests waiting for an engine slot (queued or submitted-but-future).
    pub queue_depth: usize,
    /// Requests currently admitted (prefilling or decoding).
    pub active: usize,
    /// KV-cache tokens resident.
    pub kv_in_use: usize,
    /// Committed-but-not-yet-resident KV demand: queued prompts plus
    /// remaining prefill of admitted requests.
    pub backlog_tokens: usize,
    /// The replica's KV budget in tokens.
    pub kv_budget_tokens: usize,
}

impl ReplicaSnapshot {
    /// Requests in the replica's system: queued plus admitted.
    pub fn load(&self) -> usize {
        self.queue_depth + self.active
    }

    /// KV demand (resident plus committed backlog) relative to the
    /// budget. Unlike utilization, this can exceed 1 under overload.
    pub fn kv_load(&self) -> f64 {
        conv::f64_from_usize(self.kv_in_use + self.backlog_tokens)
            / conv::f64_from_usize(self.kv_budget_tokens.max(1))
    }
}

/// The routing state machine: a policy plus whatever memory it needs
/// (round-robin carries a cursor; cache-affinity carries the
/// session-to-replica pin table). Fully deterministic: ties break toward
/// the lowest replica index.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Router {
    policy: RouterPolicy,
    rr_next: usize,
    /// Cache-affinity pin table: the replica that last served each
    /// prefix group, with the routing-decision tick of its last use
    /// (for [`AFFINITY_PIN_CAP`] pruning). A front-door session table,
    /// not an inspection of replica caches — a pinned prefix may have
    /// been evicted, in which case the pinned replica simply
    /// re-prefills it. A `BTreeMap` so the pruning pass visits pins in
    /// a defined order (the determinism contract; see `ador-lint`).
    affinity: BTreeMap<u64, (usize, u64)>,
    /// Routing decisions taken so far (the pin table's logical clock).
    routed: u64,
}

impl Router {
    /// Creates a router with the given policy.
    pub fn new(policy: RouterPolicy) -> Self {
        Self {
            policy,
            rr_next: 0,
            affinity: BTreeMap::new(),
            routed: 0,
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> RouterPolicy {
        self.policy
    }

    /// Picks the replica for a request from SLO class `tenant` (of
    /// `classes` total) carrying `prefix_group` content identity, given
    /// the fleet's load snapshots.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is empty.
    pub fn route(
        &mut self,
        tenant: usize,
        classes: usize,
        prefix_group: Option<u64>,
        replicas: &[ReplicaSnapshot],
    ) -> usize {
        assert!(!replicas.is_empty(), "cannot route across zero replicas");
        match self.policy {
            RouterPolicy::RoundRobin => {
                let idx = self.rr_next % replicas.len();
                self.rr_next = self.rr_next.wrapping_add(1);
                idx
            }
            RouterPolicy::JoinShortestQueue => argmin(0..replicas.len(), |i| replicas[i].load()),
            RouterPolicy::LeastKvLoad => argmin(0..replicas.len(), |i| replicas[i].kv_load()),
            RouterPolicy::SloAware => {
                let classes = classes.max(1);
                let partition: Vec<usize> = (0..replicas.len())
                    .filter(|r| r % classes == tenant % classes)
                    .collect();
                if partition.is_empty() {
                    argmin(0..replicas.len(), |i| replicas[i].load())
                } else {
                    argmin(partition.into_iter(), |i| replicas[i].load())
                }
            }
            RouterPolicy::CacheAffinity => {
                let fallback = argmin(0..replicas.len(), |i| replicas[i].kv_load());
                let Some(group) = prefix_group else {
                    return fallback;
                };
                self.routed += 1;
                let chosen = match self.affinity.get(&group) {
                    Some(&(pinned, _))
                        if pinned < replicas.len()
                            && replicas[pinned].kv_load()
                                <= replicas[fallback].kv_load() + AFFINITY_SPILL =>
                    {
                        pinned
                    }
                    _ => fallback,
                };
                if self.affinity.len() >= AFFINITY_PIN_CAP && !self.affinity.contains_key(&group) {
                    // Prune pins idle for a full cap's worth of decisions:
                    // those sessions ended long ago (cost of a wrong prune
                    // is one re-prefill, not correctness).
                    let horizon = self
                        .routed
                        .saturating_sub(conv::u64_from_usize(AFFINITY_PIN_CAP));
                    self.affinity.retain(|_, &mut (_, used)| used > horizon);
                }
                self.affinity.insert(group, (chosen, self.routed));
                chosen
            }
        }
    }

    /// Picks a replica from the subset `pool` (fleet-wide indices into
    /// `replicas`), applying the policy pool-locally: load comparisons,
    /// round-robin cycling, `SloAware` partitioning and affinity pins
    /// all see only the pool's members, and the returned index is mapped
    /// back to the fleet. A disaggregated fleet's routers each own one
    /// pool, so always calling a given router with the same pool keeps
    /// its cursor/pin state coherent.
    ///
    /// # Panics
    ///
    /// Panics if `pool` is empty.
    pub fn route_pool(
        &mut self,
        tenant: usize,
        classes: usize,
        prefix_group: Option<u64>,
        replicas: &[ReplicaSnapshot],
        pool: &[usize],
    ) -> usize {
        assert!(!pool.is_empty(), "cannot route across an empty pool");
        let local: Vec<ReplicaSnapshot> = pool.iter().map(|&i| replicas[i]).collect();
        pool[self.route(tenant, classes, prefix_group, &local)]
    }
}

/// First index attaining the minimum (ties break toward the earliest
/// candidate, so routing is deterministic). Load keys are counts or
/// ratios of counts, never NaN.
fn argmin<K: PartialOrd>(
    candidates: impl Iterator<Item = usize>,
    key: impl Fn(usize) -> K,
) -> usize {
    let mut best: Option<(usize, K)> = None;
    for i in candidates {
        let k = key(i);
        if best.as_ref().is_none_or(|(_, bk)| k < *bk) {
            best = Some((i, k));
        }
    }
    // ador-lint: allow(panic) — invariant: every call site guards against zero replicas
    best.expect("caller checks non-empty").0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(queue: usize, active: usize, kv: usize) -> ReplicaSnapshot {
        ReplicaSnapshot {
            queue_depth: queue,
            active,
            kv_in_use: kv,
            backlog_tokens: 0,
            kv_budget_tokens: 1000,
        }
    }

    #[test]
    fn round_robin_cycles() {
        let mut r = Router::new(RouterPolicy::RoundRobin);
        let snaps = vec![snap(9, 9, 900), snap(0, 0, 0), snap(0, 0, 0)];
        let picks: Vec<usize> = (0..6).map(|_| r.route(0, 1, None, &snaps)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2], "ignores load by design");
    }

    #[test]
    fn jsq_picks_least_loaded_with_low_index_ties() {
        let mut r = Router::new(RouterPolicy::JoinShortestQueue);
        assert_eq!(
            r.route(0, 1, None, &[snap(3, 2, 0), snap(1, 2, 0), snap(4, 0, 0)]),
            1
        );
        // Tie between 0 and 2 → lowest index.
        assert_eq!(
            r.route(0, 1, None, &[snap(1, 1, 0), snap(3, 0, 0), snap(2, 0, 0)]),
            0
        );
        assert_eq!(
            r.route(0, 1, None, &[snap(1, 0, 0), snap(2, 0, 0), snap(1, 0, 0)]),
            0
        );
    }

    #[test]
    fn least_kv_routes_by_token_backlog_not_count() {
        let mut r = Router::new(RouterPolicy::LeastKvLoad);
        // Replica 0 has fewer requests but far more resident KV.
        let snaps = vec![snap(0, 1, 800), snap(2, 2, 100)];
        assert_eq!(r.route(0, 1, None, &snaps), 1);
        let mut jsq = Router::new(RouterPolicy::JoinShortestQueue);
        assert_eq!(
            jsq.route(0, 1, None, &snaps),
            0,
            "JSQ sees it the other way"
        );
    }

    #[test]
    fn least_kv_counts_committed_backlog_not_just_residency() {
        // Replica 0 looks empty by residency but has a burst of queued
        // prompts committed to it; demand-aware routing avoids the herd.
        let mut r = Router::new(RouterPolicy::LeastKvLoad);
        let herd_target = ReplicaSnapshot {
            queue_depth: 4,
            active: 0,
            kv_in_use: 0,
            backlog_tokens: 700,
            kv_budget_tokens: 1000,
        };
        let steady = ReplicaSnapshot {
            queue_depth: 0,
            active: 2,
            kv_in_use: 300,
            backlog_tokens: 0,
            kv_budget_tokens: 1000,
        };
        assert_eq!(r.route(0, 1, None, &[herd_target, steady]), 1);
    }

    #[test]
    fn slo_aware_partitions_by_class() {
        let mut r = Router::new(RouterPolicy::SloAware);
        let snaps = vec![snap(5, 0, 0), snap(0, 0, 0), snap(1, 0, 0), snap(9, 0, 0)];
        // Two classes over four replicas: class 0 → {0, 2}, class 1 → {1, 3}.
        assert_eq!(r.route(0, 2, None, &snaps), 2);
        assert_eq!(r.route(1, 2, None, &snaps), 1);
        // Three classes over one replica: class 2's partition is empty →
        // fleet-wide fallback.
        let one = vec![snap(0, 0, 0)];
        assert_eq!(r.route(2, 3, None, &one), 0);
    }

    #[test]
    fn cache_affinity_pins_sessions_and_spills_under_pressure() {
        let mut r = Router::new(RouterPolicy::CacheAffinity);
        let even = vec![snap(0, 0, 100), snap(0, 0, 100), snap(0, 0, 100)];
        // First turn of a session: falls back to least-KV (tie → 0) and
        // pins the session there.
        assert_eq!(r.route(0, 1, Some(77), &even), 0);
        // Later turns stick to replica 0 even when another replica is
        // (mildly) less loaded.
        let mild = vec![snap(0, 0, 300), snap(0, 0, 100), snap(0, 0, 100)];
        assert_eq!(
            r.route(0, 1, Some(77), &mild),
            0,
            "locality beats mild load"
        );
        // A different session pins independently.
        assert_eq!(r.route(0, 1, Some(99), &mild), 1);
        // Once the pinned replica falls more than AFFINITY_SPILL of a
        // budget behind the best, the session spills and is re-pinned.
        let hot = vec![snap(0, 0, 800), snap(0, 0, 100), snap(0, 0, 100)];
        assert_eq!(r.route(0, 1, Some(77), &hot), 1, "spill past the threshold");
        assert_eq!(
            r.route(0, 1, Some(77), &even),
            1,
            "the spilled session is re-pinned to its new replica"
        );
    }

    #[test]
    fn cache_affinity_without_group_is_least_kv_load() {
        let mut affinity = Router::new(RouterPolicy::CacheAffinity);
        let mut kv = Router::new(RouterPolicy::LeastKvLoad);
        let snaps = vec![snap(1, 1, 500), snap(0, 2, 200), snap(3, 0, 900)];
        assert_eq!(
            affinity.route(0, 1, None, &snaps),
            kv.route(0, 1, None, &snaps)
        );
    }

    #[test]
    #[should_panic(expected = "zero replicas")]
    fn routing_across_no_replicas_panics() {
        let _ = Router::new(RouterPolicy::RoundRobin).route(0, 1, None, &[]);
    }
}
