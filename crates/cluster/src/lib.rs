//! Cluster-level LLM serving: a fleet of engine replicas behind a router,
//! serving multi-tenant traffic under per-class SLOs.
//!
//! The paper's serving evaluation (§V-D, Fig. 16) stops at a single
//! engine; production systems front a *fleet* of replicas with a router
//! and serve several traffic classes with different latency contracts at
//! once. This crate adds that layer on top of [`ador_serving`]'s
//! incremental [`Engine`](ador_serving::Engine) API:
//!
//! - **[`ClusterSim`]** — N independent engine replicas driven by a
//!   discrete-event core on one global clock: a binary-heap event queue
//!   over arrivals and replica-ready instants, so each replica advances
//!   only when it actually has work and every routing decision reads load
//!   snapshots consistent with the single fleet timeline. The original
//!   lockstep sweep survives as [`DriveMode::Lockstep`], the regression
//!   oracle the event core is pinned against (identical per-request
//!   outcomes).
//! - **[`Router`] / [`RouterPolicy`]** — pluggable routing:
//!   round-robin (the count-balancing baseline), join-shortest-queue,
//!   least-KV-load (token-backlog aware), SLO-aware class partitioning,
//!   and cache-affinity (sticky per-session routing that keeps a
//!   session's turns on the replica whose prefix cache holds its
//!   context, spilling past [`AFFINITY_SPILL`]). Deterministic: ties
//!   break toward the lowest replica index, so the same seed reproduces
//!   the same assignment trace.
//! - **[`TenantMix`] / [`TenantClass`]** — multi-tenant workloads:
//!   chatbot / summarization / code-completion presets with distinct
//!   token-length marginals, SLO targets and arrival processes
//!   ([`ArrivalProcess::Poisson`] plus the bursty
//!   [`ArrivalProcess::OnOffMmpp`]), multiplexed into one seeded,
//!   deterministic request stream. Classes with a [`SessionShape`]
//!   emit multi-turn conversations whose prompts grow by the previous
//!   context — the prefix-caching workload
//!   ([`ClusterConfig::with_prefix_caching`]). Every generated request
//!   carries its class's [`Slo`](ador_serving::Slo) and draft-acceptance
//!   profile ([`TenantClass::accept_rate`]), the per-tenant inputs of
//!   SLO-customized speculative decoding
//!   ([`ClusterConfig::with_speculation`]).
//! - **[`FleetSpec`] / [`Topology`]** — heterogeneous composition and
//!   prefill/decode disaggregation: each [`ReplicaSpec`] carries its own
//!   architecture, engine config and [`PoolRole`], and
//!   [`ClusterConfig::with_disaggregation`] splits request lifecycles
//!   across the pools — prompts prefill in the prefill pool, finished
//!   contexts ship over a [`KvLink`] (latency plus tokens ×
//!   KV-bytes/token at link bandwidth, charged on the event clock), and
//!   decode halves run in the decode pool under
//!   [`ClusterConfig::decode_policy`]. Conservation extends to the
//!   link: `submitted == completed + rejected + in_flight +
//!   in_transfer` at every event boundary.
//! - **[`FleetReport`]** — fleet-wide QoS: the merged engine report
//!   (via [`QosReport::merge`](ador_serving::QosReport::merge)),
//!   per-tenant SLO attainment (shed requests count as misses),
//!   per-replica utilization imbalance, the full routing trace, and the
//!   KV-transfer counters of a disaggregated run.
//! - **[`cluster_capacity`]** — the fleet analogue of the paper's
//!   Fig. 16 search: bisect the aggregate arrival rate (preserving the
//!   per-class traffic shares) for the largest load at which every class
//!   keeps its attainment target.
//!
//! Optional admission control ([`ClusterConfig::queue_cap`]) sheds
//! requests when the chosen replica's queue is too deep; shed requests
//! are tracked per tenant and count against attainment.
//!
//! # Examples
//!
//! ```
//! use ador_cluster::{ClusterConfig, ClusterSim, RouterPolicy, TenantClass, TenantMix};
//! use ador_perf::Deployment;
//!
//! let arch = ador_baselines::ador_table3();
//! let model = ador_model::presets::llama3_8b();
//! // A skewed two-tenant mix: steady chat plus bursty summarization.
//! let mix = TenantMix::new(vec![
//!     TenantClass::chatbot(5.0),
//!     TenantClass::summarization(1.5),
//! ]);
//! let cfg = ClusterConfig::new(2, RouterPolicy::LeastKvLoad);
//! let report = ClusterSim::new(&arch, &model, Deployment::single_device(), cfg)?
//!     .run(&mix, 80, 3)?;
//! assert_eq!(report.completed + report.rejected, 80);
//! for tenant in &report.tenants {
//!     println!("{}: attainment {:.2}", tenant.name, tenant.attainment);
//! }
//! # Ok::<(), ador_serving::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod capacity;
mod cluster;
mod fleet;
mod report;
mod router;
pub mod scenarios;
mod tenant;

pub use capacity::{cluster_capacity, ClusterCapacityResult};
pub use cluster::{ClusterConfig, ClusterSim, DriveMode};
pub use fleet::{FleetSpec, KvLink, PoolRole, ReplicaSpec, Topology};
pub use report::{FleetAttribution, FleetReport, FleetTelemetry, TenantQos};
pub use router::{ReplicaSnapshot, Router, RouterPolicy, AFFINITY_SPILL};
pub use tenant::{ArrivalProcess, ClusterRequest, SessionShape, TenantClass, TenantMix};
