//! Fleet-wide QoS aggregation: per-tenant attainment, per-replica
//! utilization imbalance, and the merged engine-level report.

use ador_serving::{LatencyStats, QosReport, RequestOutcome, Slo};
use ador_telemetry::{AttributionReport, Event, TimeSeries};
use ador_units::{conv, Seconds};
use serde::Serialize;

use crate::{PoolRole, RouterPolicy};

/// QoS of one tenant class across the whole fleet.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TenantQos {
    /// Class name (from the [`TenantMix`](crate::TenantMix)).
    pub name: String,
    /// Requests the class submitted to the cluster.
    pub submitted: usize,
    /// Requests that completed.
    pub completed: usize,
    /// Requests shed by admission control.
    pub rejected: usize,
    /// The class's SLO contract.
    pub slo: Slo,
    /// Completed requests whose lifecycle met the SLO.
    pub slo_met: usize,
    /// SLO attainment: met / (completed + rejected). Shed requests count
    /// as misses — a rejected user got no service at all.
    pub attainment: f64,
    /// TTFT stats over the class's completed requests (`None` if none
    /// completed).
    pub ttft: Option<LatencyStats>,
    /// Mean-TBT stats over the class's completed requests.
    pub tbt: Option<LatencyStats>,
}

impl TenantQos {
    /// Summarizes one class from its completed outcomes and shed count.
    pub fn from_outcomes(
        name: impl Into<String>,
        slo: Slo,
        outcomes: &[RequestOutcome],
        submitted: usize,
        rejected: usize,
    ) -> Self {
        let slo_met = outcomes.iter().filter(|o| slo.met(o)).count();
        let judged = outcomes.len() + rejected;
        let attainment = if judged == 0 {
            0.0
        } else {
            conv::f64_from_usize(slo_met) / conv::f64_from_usize(judged)
        };
        let stats = |pick: fn(&RequestOutcome) -> ador_units::Seconds| {
            if outcomes.is_empty() {
                None
            } else {
                let samples: Vec<ador_units::Seconds> = outcomes.iter().map(pick).collect();
                Some(LatencyStats::from_samples(&samples))
            }
        };
        Self {
            name: name.into(),
            submitted,
            completed: outcomes.len(),
            rejected,
            slo,
            slo_met,
            attainment,
            ttft: stats(|o| o.ttft),
            tbt: stats(|o| o.mean_tbt),
        }
    }
}

/// Observability artifacts of one cluster run, present on
/// [`FleetReport::telemetry`] only when the embedded engine config enabled
/// telemetry ([`SimConfig::with_telemetry`](ador_serving::SimConfig) —
/// `None` otherwise, so untraced reports compare bit-identically to
/// pre-telemetry ones).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FleetTelemetry {
    /// Per-replica lifecycle event streams, in recording order. Replicas
    /// that traced nothing (or fleets tracing through a bounded flight
    /// recorder) hold what their sink retained.
    pub events: Vec<Vec<Event>>,
    /// Per-replica windowed time series (empty when no series interval
    /// was configured).
    pub series: Vec<TimeSeries>,
    /// Pool role of each entry in `series`, index-aligned: under
    /// disaggregation the prefill-pool and decode-pool streams stay
    /// separable (transfer backpressure shows up decode-side only), and
    /// aggregated fleets carry all-`Unified` tags.
    pub series_roles: Vec<PoolRole>,
    /// Per-tenant goodput (completed tokens/s) per window of
    /// `goodput_interval`, over the shared fleet clock. Empty when no
    /// series interval was configured.
    pub tenant_goodput: Vec<Vec<f64>>,
    /// The window width behind `tenant_goodput`.
    pub goodput_interval: Seconds,
    /// KV-handoff markers of a disaggregated run, time-ordered: each
    /// transfer contributes a
    /// [`KvTransferStart`](ador_telemetry::EventKind::KvTransferStart)
    /// stamped on its prefill replica at context departure and a
    /// [`KvTransferEnd`](ador_telemetry::EventKind::KvTransferEnd)
    /// stamped on its decode replica at maturity, as `(replica, event)`
    /// pairs. Empty for aggregated topologies.
    pub transfer_events: Vec<(usize, Event)>,
}

/// Time-loss attribution of one cluster run (see
/// [`ador_telemetry::attribution`]): per-tenant and fleet-wide blame
/// ledgers built by replaying the recorded event streams. The fleet
/// report is the exact merge of the tenant reports — integer
/// nanoseconds end to end.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct FleetAttribution {
    /// Per-tenant blame, indexed like the mix's classes.
    pub per_tenant: Vec<AttributionReport>,
    /// The whole-fleet ledger (exact merge of `per_tenant`).
    pub fleet: AttributionReport,
}

/// The QoS report of one cluster run: the fleet total, its per-replica and
/// per-tenant breakdowns, and the routing trace.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FleetReport {
    /// Engine replicas in the fleet.
    pub replicas: usize,
    /// The routing policy that produced this report (the prefill-pool
    /// policy under disaggregation).
    pub policy: RouterPolicy,
    /// The decode-pool routing policy — `Some` exactly for disaggregated
    /// runs.
    pub decode_policy: Option<RouterPolicy>,
    /// Requests offered to the cluster.
    pub submitted: usize,
    /// Requests that completed end-to-end. Under disaggregation a
    /// request counts once its decode half finishes and the halves are
    /// stitched.
    pub completed: usize,
    /// Requests shed by admission control.
    pub rejected: usize,
    /// The merged engine-level report, or `None` if nothing completed.
    /// Built via [`QosReport::merge_exact`] from the pooled per-request
    /// outcomes on the shared fleet clock, so its latency percentiles are
    /// exact union percentiles (not the bound-based
    /// [`LatencyStats::merge`] maximum) and its makespan/throughput never
    /// mix per-replica timelines.
    pub fleet: Option<QosReport>,
    /// Per-replica reports; `None` for replicas that completed nothing.
    pub per_replica: Vec<Option<QosReport>>,
    /// Per-tenant breakdowns, indexed like the mix's classes.
    pub tenants: Vec<TenantQos>,
    /// The routing trace: for each offered request id, the replica it was
    /// assigned to (`None` if shed). Two runs with the same seed and
    /// policy produce identical traces.
    pub assignments: Vec<(u64, Option<usize>)>,
    /// Per-replica utilization imbalance: the population coefficient of
    /// variation (σ/μ) of processed tokens per replica. 0 is a perfectly
    /// even spread; RoundRobin on heavy-tailed traffic runs well above
    /// the adaptive policies.
    pub imbalance: f64,
    /// KV-context transfers a disaggregated run shipped between pools
    /// (0 for aggregated topologies).
    pub kv_transfers: usize,
    /// Total context tokens those transfers moved across the link.
    pub kv_transferred_tokens: u64,
    /// Observability artifacts (event streams, time series, per-tenant
    /// goodput), or `None` when the run was untraced.
    pub telemetry: Option<FleetTelemetry>,
    /// SLO-miss attribution, present only when the telemetry config
    /// opted in ([`TelemetryConfig::with_attribution`](ador_telemetry::TelemetryConfig))
    /// on top of an event sink — `None` otherwise, so plain traced
    /// reports stay bit-identical to earlier releases.
    pub attribution: Option<FleetAttribution>,
}

impl FleetReport {
    /// Fleet-wide SLO attainment: the request-weighted mean over tenants
    /// (shed requests counting as misses).
    pub fn fleet_attainment(&self) -> f64 {
        let judged: usize = self.tenants.iter().map(|t| t.completed + t.rejected).sum();
        if judged == 0 {
            return 0.0;
        }
        let met: usize = self.tenants.iter().map(|t| t.slo_met).sum();
        conv::f64_from_usize(met) / conv::f64_from_usize(judged)
    }
}

/// Population coefficient of variation of per-replica processed-token
/// counts.
pub(crate) fn imbalance(tokens_per_replica: &[f64]) -> f64 {
    if tokens_per_replica.is_empty() {
        return 0.0;
    }
    let n = conv::f64_from_usize(tokens_per_replica.len());
    let mean = tokens_per_replica.iter().sum::<f64>() / n;
    if mean <= 0.0 {
        return 0.0;
    }
    let var = tokens_per_replica
        .iter()
        .map(|t| (t - mean).powi(2))
        .sum::<f64>()
        / n;
    var.sqrt() / mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use ador_serving::Request;
    use ador_units::Seconds;

    fn outcome(ttft_ms: f64, tbt_ms: f64) -> RequestOutcome {
        RequestOutcome {
            request: Request::new(0, Seconds::ZERO, 100, 10),
            ttft: Seconds::from_millis(ttft_ms),
            mean_tbt: Seconds::from_millis(tbt_ms),
            max_tbt: Seconds::from_millis(tbt_ms * 1.5),
            e2e: Seconds::from_millis(ttft_ms + 10.0 * tbt_ms),
        }
    }

    #[test]
    fn attainment_counts_rejections_as_misses() {
        // 3 met, 1 missed, 1 shed → 3/5.
        let outcomes = vec![
            outcome(100.0, 10.0),
            outcome(100.0, 10.0),
            outcome(100.0, 10.0),
            outcome(100.0, 60.0),
        ];
        let t = TenantQos::from_outcomes("chat", Slo::strict(), &outcomes, 5, 1);
        assert_eq!(t.slo_met, 3);
        assert!((t.attainment - 0.6).abs() < 1e-12);
        assert!(t.ttft.is_some());
    }

    #[test]
    fn empty_tenant_has_zero_attainment_and_no_stats() {
        let t = TenantQos::from_outcomes("idle", Slo::relaxed(), &[], 0, 0);
        assert_eq!(t.attainment, 0.0);
        assert!(t.ttft.is_none() && t.tbt.is_none());
    }

    #[test]
    fn imbalance_is_zero_when_even_and_grows_with_skew() {
        assert_eq!(imbalance(&[1000.0, 1000.0, 1000.0]), 0.0);
        assert_eq!(imbalance(&[]), 0.0);
        assert_eq!(imbalance(&[0.0, 0.0]), 0.0);
        let even = imbalance(&[900.0, 1000.0, 1100.0]);
        let skew = imbalance(&[100.0, 1000.0, 1900.0]);
        assert!(skew > even && even > 0.0);
    }
}
