//! Heterogeneous fleet composition: per-replica hardware + engine
//! configs, pool roles, and the prefill/decode disaggregation topology.
//!
//! The paper's fleet (§V-D) is N copies of one chip. Production serving
//! increasingly splits the two phases onto different hardware: prefill is
//! compute-bound (it wants MAC arrays), decode is DRAM-bandwidth-bound
//! (it wants HBM stacks), and a chip sized for one wastes the other. A
//! [`FleetSpec`] names each replica's [`Architecture`] and
//! [`SimConfig`]; a [`Topology::Disaggregated`] fleet routes fresh
//! prompts to the prefill pool and ships each finished context to the
//! decode pool over an explicit [`KvLink`] (tokens × bytes-per-token at
//! link bandwidth, plus a fixed latency), charged on the event clock.

use ador_hw::Architecture;
use ador_serving::SimConfig;
use ador_units::{Bandwidth, Seconds};
use serde::Serialize;

/// Which phase(s) of the request lifecycle a replica serves under a
/// disaggregated topology. Ignored under [`Topology::Aggregated`], where
/// every replica serves whole requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub enum PoolRole {
    /// Serves whole requests; under disaggregation it joins *both* pools.
    #[default]
    Unified,
    /// Prefill pool only: receives fresh prompts, emits the first token,
    /// then hands the context off.
    Prefill,
    /// Decode pool only: receives transferred contexts and generates the
    /// remaining tokens.
    Decode,
}

/// One replica's full description: a display name, the hardware it runs
/// on, its engine scheduler knobs, and its pool role.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ReplicaSpec {
    /// Display name (conventionally the hardware profile name, e.g.
    /// `"prefill-optimized"`).
    pub name: String,
    /// The hardware this replica runs on. Owned, so fleets can mix
    /// architectures freely; the engine borrows it for the run.
    pub arch: Architecture,
    /// Per-replica engine knobs (batch cap, prefill chunk, KV fraction,
    /// scheduler policy, telemetry). The `arrival_rate`, `requests` and
    /// `seed` fields are unused — the cluster's workload owns arrivals.
    pub engine: SimConfig,
    /// The pool this replica serves under a disaggregated topology.
    pub role: PoolRole,
}

impl ReplicaSpec {
    /// Creates a [`PoolRole::Unified`] replica spec. The name is taken
    /// from the architecture.
    pub fn new(arch: Architecture, engine: SimConfig) -> Self {
        Self {
            name: arch.name.clone(),
            arch,
            engine,
            role: PoolRole::Unified,
        }
    }

    /// Sets the replica's pool role.
    pub fn with_role(mut self, role: PoolRole) -> Self {
        self.role = role;
        self
    }

    /// Overrides the display name.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

/// A replica mix: the fleet's full composition, replica by replica.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FleetSpec {
    /// The replicas, in index order (routing ties break toward the
    /// lowest index, so order is part of the pinned scenario).
    pub replicas: Vec<ReplicaSpec>,
}

impl FleetSpec {
    /// A fleet from an explicit replica list.
    pub fn new(replicas: Vec<ReplicaSpec>) -> Self {
        Self { replicas }
    }

    /// `count` copies of one spec — the homogeneous baseline every mix
    /// is judged against.
    pub fn homogeneous(spec: &ReplicaSpec, count: usize) -> Self {
        Self {
            replicas: (0..count).map(|_| spec.clone()).collect(),
        }
    }

    /// A two-pool fleet: `prefill_count` copies of `prefill` (tagged
    /// [`PoolRole::Prefill`]) followed by `decode_count` copies of
    /// `decode` (tagged [`PoolRole::Decode`]).
    pub fn prefill_decode(
        prefill: &ReplicaSpec,
        prefill_count: usize,
        decode: &ReplicaSpec,
        decode_count: usize,
    ) -> Self {
        let mut replicas = Vec::with_capacity(prefill_count + decode_count);
        for _ in 0..prefill_count {
            replicas.push(prefill.clone().with_role(PoolRole::Prefill));
        }
        for _ in 0..decode_count {
            replicas.push(decode.clone().with_role(PoolRole::Decode));
        }
        Self { replicas }
    }

    /// Number of replicas.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Whether the fleet has no replicas.
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Indices serving the prefill side of a disaggregated fleet
    /// ([`PoolRole::Prefill`] and [`PoolRole::Unified`] replicas).
    pub fn prefill_pool(&self) -> Vec<usize> {
        self.replicas
            .iter()
            .enumerate()
            .filter(|(_, s)| s.role != PoolRole::Decode)
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices serving the decode side of a disaggregated fleet
    /// ([`PoolRole::Decode`] and [`PoolRole::Unified`] replicas).
    pub fn decode_pool(&self) -> Vec<usize> {
        self.replicas
            .iter()
            .enumerate()
            .filter(|(_, s)| s.role != PoolRole::Prefill)
            .map(|(i, _)| i)
            .collect()
    }
}

/// The interconnect a disaggregated fleet ships KV contexts over.
///
/// Moving a finished context of `c` tokens costs
/// `latency + c × kv_bytes_per_token / bandwidth` on the fleet clock —
/// the continuation cannot start decoding anywhere before that instant.
/// The latency must be strictly positive: it is also the causality
/// guard the drivers use to bound how far any replica may be swept
/// while a prefill completion (and hence a future delivery) is still
/// undiscovered.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct KvLink {
    /// Link bandwidth available to one context transfer.
    pub bandwidth: Bandwidth,
    /// Fixed per-transfer latency (setup + first-byte). Must be > 0.
    pub latency: Seconds,
}

impl KvLink {
    /// Creates a link.
    ///
    /// # Panics
    ///
    /// Panics unless both bandwidth and latency are strictly positive.
    pub fn new(bandwidth: Bandwidth, latency: Seconds) -> Self {
        assert!(
            bandwidth.as_bytes_per_sec() > 0.0 && latency.get() > 0.0,
            "KV links need positive bandwidth and latency"
        );
        Self { bandwidth, latency }
    }
}

/// How the fleet divides request lifecycles across replicas.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub enum Topology {
    /// Every replica serves whole requests (the paper's fleet shape).
    /// Pool roles are ignored.
    #[default]
    Aggregated,
    /// Prefill/decode disaggregation: fresh prompts are routed within the
    /// prefill pool; each finished context (prompt + first token) is
    /// shipped to a decode-pool replica over the [`KvLink`] and the
    /// remaining tokens decode there. Requests with a single output
    /// token complete on the prefill side and are never shipped.
    Disaggregated(KvLink),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ReplicaSpec {
        ReplicaSpec::new(ador_baselines::ador_table3(), SimConfig::new(1.0, 64))
    }

    #[test]
    fn homogeneous_fleets_are_unified_everywhere() {
        let fleet = FleetSpec::homogeneous(&spec(), 3);
        assert_eq!(fleet.len(), 3);
        assert_eq!(fleet.prefill_pool(), vec![0, 1, 2]);
        assert_eq!(fleet.decode_pool(), vec![0, 1, 2]);
    }

    #[test]
    fn prefill_decode_fleets_split_their_pools() {
        let fleet = FleetSpec::prefill_decode(&spec(), 2, &spec(), 3);
        assert_eq!(fleet.len(), 5);
        assert_eq!(fleet.prefill_pool(), vec![0, 1]);
        assert_eq!(fleet.decode_pool(), vec![2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "positive bandwidth")]
    fn zero_latency_links_are_rejected() {
        let _ = KvLink::new(ador_units::Bandwidth::from_gbps(100.0), Seconds::new(0.0));
    }
}
