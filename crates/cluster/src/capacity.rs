//! Fleet capacity search: the largest aggregate request rate a cluster
//! sustains while every tenant class keeps its SLO attainment.

use ador_hw::Architecture;
use ador_model::ModelConfig;
use ador_perf::Deployment;
use ador_serving::{bisect_rate, SimError};
use serde::Serialize;

use crate::{ClusterConfig, ClusterSim, FleetReport, TenantMix};

/// Result of a fleet capacity search.
#[derive(Debug, Clone, Serialize)]
pub struct ClusterCapacityResult {
    /// Largest aggregate arrival rate (req/s across all tenants) that met
    /// the attainment target.
    pub rate: f64,
    /// The fleet report measured at that rate.
    pub report: FleetReport,
}

/// Bisects the aggregate arrival rate (via
/// [`TenantMix::with_aggregate_rate`], preserving per-class shares and
/// burst structure) for the largest load at which **every** tenant class
/// keeps `attainment >= min_attainment` and nothing is shed. Reuses the
/// same bracketing search as the single-engine Fig. 16 capacity
/// ([`ador_serving::bisect_rate`]).
///
/// `lo` must be sustainable; if even `lo` misses the target, the result
/// rate is `0.0` with the `lo` report attached.
///
/// # Errors
///
/// Returns [`SimError::InvalidBounds`] unless `0 < lo < hi`, and
/// propagates cluster construction/run errors.
///
/// # Examples
///
/// ```no_run
/// use ador_cluster::{cluster_capacity, ClusterConfig, RouterPolicy, TenantClass, TenantMix};
/// use ador_perf::Deployment;
///
/// let arch = ador_baselines::ador_table3();
/// let model = ador_model::presets::llama3_8b();
/// let mix = TenantMix::new(vec![TenantClass::chatbot(1.0)]);
/// let cfg = ClusterConfig::new(4, RouterPolicy::JoinShortestQueue);
/// let cap = cluster_capacity(
///     &arch, &model, Deployment::single_device(), cfg,
///     &mix, 200, 7, 0.9, (1.0, 80.0), 6,
/// )?;
/// assert!(cap.rate > 0.0);
/// # Ok::<(), ador_serving::SimError>(())
/// ```
#[allow(clippy::too_many_arguments)]
pub fn cluster_capacity(
    arch: &Architecture,
    model: &ModelConfig,
    deployment: Deployment,
    cfg: ClusterConfig,
    mix: &TenantMix,
    requests: usize,
    seed: u64,
    min_attainment: f64,
    bounds: (f64, f64),
    iterations: usize,
) -> Result<ClusterCapacityResult, SimError> {
    let (rate, report) = bisect_rate(bounds, iterations, |rate| -> Result<_, SimError> {
        let scaled = mix.clone().with_aggregate_rate(rate);
        let report = ClusterSim::new(arch, model, deployment, cfg)?.run(&scaled, requests, seed)?;
        let ok = report.rejected == 0
            && report
                .tenants
                .iter()
                .all(|t| t.attainment >= min_attainment);
        Ok((ok, report))
    })?;
    Ok(ClusterCapacityResult { rate, report })
}

#[cfg(test)]
mod tests {
    // tests may unwrap: a failed unwrap is exactly the test failing
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::{RouterPolicy, TenantClass};
    use ador_baselines::ador_table3;
    use ador_model::presets;

    fn capacity(replicas: usize) -> ClusterCapacityResult {
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let mix = TenantMix::new(vec![
            TenantClass::chatbot(3.0),
            TenantClass::code_completion(1.0),
        ]);
        cluster_capacity(
            &arch,
            &model,
            Deployment::single_device(),
            ClusterConfig::new(replicas, RouterPolicy::JoinShortestQueue),
            &mix,
            120,
            13,
            0.9,
            (0.5, 80.0),
            5,
        )
        .unwrap()
    }

    #[test]
    fn more_replicas_sustain_more_aggregate_load() {
        let one = capacity(1);
        let four = capacity(4);
        assert!(one.rate > 0.0, "one replica must sustain the 0.5 floor");
        assert!(
            four.rate > one.rate * 1.5,
            "4 replicas {:.1} req/s vs 1 replica {:.1} req/s",
            four.rate,
            one.rate
        );
    }

    #[test]
    fn search_is_deterministic() {
        let a = capacity(2);
        let b = capacity(2);
        assert_eq!(a.rate, b.rate);
        assert_eq!(a.report, b.report);
    }

    #[test]
    fn bad_bounds_propagate() {
        let arch = ador_table3();
        let model = presets::llama3_8b();
        let mix = TenantMix::new(vec![TenantClass::chatbot(1.0)]);
        let err = cluster_capacity(
            &arch,
            &model,
            Deployment::single_device(),
            ClusterConfig::new(1, RouterPolicy::RoundRobin),
            &mix,
            40,
            1,
            0.9,
            (5.0, 2.0),
            3,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::InvalidBounds { .. }));
    }
}
