//! Search results and errors.

use core::fmt;

use ador_hw::{Architecture, AreaBreakdown};
use ador_perf::Deployment;
use ador_units::{Area, Seconds};
use serde::Serialize;

/// One evaluated candidate in the search log.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SearchStep {
    /// Candidate name (encodes SA/MT/core configuration).
    pub candidate: String,
    /// Estimated die area.
    pub area: Area,
    /// Predicted TTFT at the workload's prompt length.
    pub ttft: Seconds,
    /// Predicted TBT at the workload's batch.
    pub tbt: Seconds,
    /// Whether it met the user requirements.
    pub satisfied: bool,
}

/// The proposed architecture plus everything the paper's Fig. 9 reports:
/// QoS, utilization context, area/cost estimate, and the feedback notes
/// when requirements could not be met.
#[derive(Debug, Clone, Serialize)]
pub struct SearchOutcome {
    /// The proposed architecture.
    pub architecture: Architecture,
    /// Itemized die area.
    pub area: AreaBreakdown,
    /// The deployment the workload needs (TP width, link).
    pub deployment: Deployment,
    /// Predicted time-to-first-token at the operating point.
    pub ttft: Seconds,
    /// Predicted time-between-tokens at the operating point.
    pub tbt: Seconds,
    /// Whether the user requirements were met.
    pub satisfied: bool,
    /// How much QoS headroom remains (negative when unsatisfied).
    pub qos_margin: f64,
    /// The full candidate log.
    pub steps: Vec<SearchStep>,
    /// Feedback-path notes ("additional hardware specifications needed").
    pub notes: Vec<String>,
}

impl fmt::Display for SearchOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "proposed: {}", self.architecture)?;
        writeln!(f, "die area: {}", self.area.total())?;
        writeln!(f, "deployment: {}", self.deployment)?;
        writeln!(
            f,
            "QoS: TTFT {} / TBT {} ({})",
            self.ttft,
            self.tbt,
            if self.satisfied {
                "meets SLA"
            } else {
                "misses SLA"
            }
        )?;
        for note in &self.notes {
            writeln!(f, "note: {note}")?;
        }
        Ok(())
    }
}

/// Why the search could not produce an outcome at all.
#[derive(Debug, Clone, PartialEq)]
pub enum SearchError {
    /// No candidate fit the vendor's physical budget.
    NoFeasibleCandidate {
        /// The offered area budget.
        area_budget: Area,
        /// The workload's model.
        model: String,
    },
    /// The workload could not be placed on the device budget.
    DeploymentPlanning(String),
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchError::NoFeasibleCandidate { area_budget, model } => write!(
                f,
                "no candidate for '{model}' fits within {area_budget} \
                 (SRAM or area budget too small for any configuration)"
            ),
            SearchError::DeploymentPlanning(msg) => write!(f, "deployment planning failed: {msg}"),
        }
    }
}

impl std::error::Error for SearchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_names_model() {
        let e = SearchError::NoFeasibleCandidate {
            area_budget: Area::from_mm2(100.0),
            model: "LLaMA3 8B".into(),
        };
        assert!(format!("{e}").contains("LLaMA3 8B"));
        let _: &dyn std::error::Error = &e;
    }
}
