//! Step 1 of the search: compute-unit and memory sizing (paper §V-A, §V-B).

use ador_hw::{MacTree, SystolicArray};
use ador_units::Bytes;

use crate::{VendorConstraints, Workload};

/// MAC-tree candidates per the paper's §V-A recipe: the tree bank must
/// consume one DRAM beat per cycle (`data_size_per_cycle =
/// memory_bandwidth / core_frequency`); the lane count is swept because
/// KV-reusing attention variants (GQA/MQA, MoE) need more compute per
/// streamed byte (Fig. 11b).
pub fn mt_candidates(vendor: &VendorConstraints, workload: &Workload) -> Vec<MacTree> {
    let dtype = workload.model.dtype.bytes();
    // Compute-per-byte of the attention: query heads per KV head decides how
    // many times a streamed KV element is reused (MQA reuses most).
    let reuse = (workload.model.heads / workload.model.kv_heads).max(1);
    let lane_options: &[usize] = if reuse >= 16 {
        &[8, 16, 32]
    } else if reuse > 1 {
        &[4, 8, 16]
    } else {
        &[1, 4, 8]
    };
    lane_options
        .iter()
        .map(|&lanes| MacTree::sized_for(vendor.memory_bandwidth, vendor.frequency, dtype, lanes))
        .collect()
}

/// Systolic-array candidates: square arrays in multiples of 32 (§V-A:
/// "configurations are tested in multiples of 32").
pub fn sa_candidates() -> Vec<SystolicArray> {
    [32usize, 64, 96, 128]
        .iter()
        .map(|&d| SystolicArray::square(d))
        .collect()
}

/// Step 1c (§V-B): local memory from the activation-usage simulator, global
/// memory from whatever SRAM budget remains. Returns `None` when the SRAM
/// budget cannot even hold the local memories.
///
/// Activations tile along the token (row) dimension across cores (§IV-B:
/// "activations can be tiled along the token ... for computation"), so each
/// core holds its share of the batch, never less than one token.
pub fn size_memories(
    vendor: &VendorConstraints,
    workload: &Workload,
    cores: usize,
) -> Option<(Bytes, Bytes)> {
    let per_core_batch = workload.batch.div_ceil(cores).max(1);
    let need = ador_perf::local_mem::required_local_memory(
        &workload.model,
        per_core_batch,
        workload.seq_len,
    );
    // Round up to a power-of-two KiB bank size.
    let local = Bytes::from_kib((need.as_kib().ceil() as u64).next_power_of_two());
    let total_local = local * cores as u64;
    if total_local > vendor.sram_budget {
        return None;
    }
    let global = vendor.sram_budget - total_local;
    if global < Bytes::from_mib(1) {
        return None;
    }
    Some((local, global))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UserRequirements;
    use ador_model::presets;

    fn vendor() -> VendorConstraints {
        VendorConstraints::a100_class()
    }

    #[test]
    fn mt_bank_consumes_the_beat() {
        let w = Workload::new(presets::llama3_8b(), 128, 1024);
        for mt in mt_candidates(&vendor(), &w) {
            let consumed = mt.matched_bandwidth(vendor().frequency, 2);
            assert!(
                consumed.as_tbps() >= vendor().memory_bandwidth.as_tbps() * 0.99,
                "{mt} consumes only {consumed}"
            );
        }
    }

    #[test]
    fn mqa_models_get_more_lanes() {
        let gqa = Workload::new(presets::llama3_8b(), 128, 1024);
        let mqa = Workload::new(presets::falcon_7b(), 128, 1024);
        let max_lanes = |w: &Workload| {
            mt_candidates(&vendor(), w)
                .iter()
                .map(|m| m.lanes())
                .max()
                .unwrap()
        };
        assert!(max_lanes(&mqa) > max_lanes(&gqa));
    }

    #[test]
    fn sa_sweep_is_multiples_of_32() {
        for sa in sa_candidates() {
            assert_eq!(sa.rows() % 32, 0);
            assert_eq!(sa.rows(), sa.cols());
        }
    }

    #[test]
    fn memory_sizing_respects_budget() {
        let w = Workload::new(presets::llama3_8b(), 32, 1024);
        let (local, global) = size_memories(&vendor(), &w, 32).unwrap();
        assert!(local * 32 + global <= vendor().sram_budget);
        // Fig. 12 regime: ~2 MiB per core at batch 32.
        assert!(local <= Bytes::from_mib(4), "{local}");
    }

    #[test]
    fn per_core_need_shrinks_as_cores_grow() {
        // Token-dimension tiling: more cores → smaller per-core batch →
        // smaller local memories.
        let w = Workload::new(presets::llama3_8b(), 128, 2048);
        let (local8, _) = size_memories(&vendor(), &w, 8).unwrap();
        let (local128, _) = size_memories(&vendor(), &w, 128).unwrap();
        assert!(local128 <= local8);
        let _ = UserRequirements::chatbot();
    }

    #[test]
    fn tiny_sram_budget_exhausts() {
        let mut v = vendor();
        v.sram_budget = Bytes::from_mib(4);
        let w = Workload::new(presets::llama3_8b(), 128, 2048);
        assert!(size_memories(&v, &w, 128).is_none());
    }
}
