//! Pareto analysis over the candidate log: the Fig. 1 design-space view.
//!
//! The Fig. 9 search returns a single min-area SLA-satisfying design, but
//! vendors often want the whole frontier — which extra square millimetres
//! buy which latency. This module extracts the (area, TTFT, TBT)
//! non-dominated set from a search's candidate log.

use ador_units::{Area, Seconds};
use serde::Serialize;

use crate::{SearchOutcome, SearchStep};

/// One non-dominated design point.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ParetoPoint {
    /// Candidate name (encodes the SA/MT/core configuration).
    pub candidate: String,
    /// Die area.
    pub area: Area,
    /// Predicted TTFT at the search's operating point.
    pub ttft: Seconds,
    /// Predicted TBT at the search's operating point.
    pub tbt: Seconds,
}

impl ParetoPoint {
    fn dominates(&self, other: &Self) -> bool {
        let no_worse = self.area <= other.area && self.ttft <= other.ttft && self.tbt <= other.tbt;
        let better = self.area < other.area || self.ttft < other.ttft || self.tbt < other.tbt;
        no_worse && better
    }
}

/// Extracts the (area, TTFT, TBT) Pareto frontier from a search outcome's
/// candidate log, sorted by area.
///
/// # Examples
///
/// ```
/// use ador_search::{pareto_frontier, SearchInput, UserRequirements, VendorConstraints, Workload};
///
/// let input = SearchInput {
///     vendor: VendorConstraints::a100_class(),
///     user: UserRequirements::chatbot(),
///     workload: Workload::new(ador_model::presets::llama3_8b(), 128, 1024),
/// };
/// let outcome = ador_search::search(&input)?;
/// let frontier = pareto_frontier(&outcome);
/// assert!(!frontier.is_empty());
/// // Along the frontier, spending more area must buy some latency back.
/// for pair in frontier.windows(2) {
///     assert!(pair[1].ttft < pair[0].ttft || pair[1].tbt < pair[0].tbt);
/// }
/// # Ok::<(), ador_search::SearchError>(())
/// ```
pub fn pareto_frontier(outcome: &SearchOutcome) -> Vec<ParetoPoint> {
    let points: Vec<ParetoPoint> = outcome
        .steps
        .iter()
        .map(|s: &SearchStep| ParetoPoint {
            candidate: s.candidate.clone(),
            area: s.area,
            ttft: s.ttft,
            tbt: s.tbt,
        })
        .collect();
    let mut frontier: Vec<ParetoPoint> = points
        .iter()
        .filter(|p| !points.iter().any(|q| q.dominates(p)))
        .cloned()
        .collect();
    frontier.sort_by(|a, b| a.area.partial_cmp(&b.area).expect("areas are never NaN"));
    frontier.dedup_by(|a, b| a.area == b.area && a.ttft == b.ttft && a.tbt == b.tbt);
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SearchInput, UserRequirements, VendorConstraints, Workload};
    use ador_model::presets;

    fn outcome() -> SearchOutcome {
        crate::search(&SearchInput {
            vendor: VendorConstraints::a100_class(),
            user: UserRequirements::chatbot(),
            workload: Workload::new(presets::llama3_8b(), 128, 1024),
        })
        .unwrap()
    }

    #[test]
    fn frontier_is_nonempty_and_nondominated() {
        let frontier = pareto_frontier(&outcome());
        assert!(!frontier.is_empty());
        for a in &frontier {
            for b in &frontier {
                assert!(!a.dominates(b), "{} dominates {}", a.candidate, b.candidate);
            }
        }
    }

    #[test]
    fn frontier_is_subset_of_candidates() {
        let out = outcome();
        let frontier = pareto_frontier(&out);
        assert!(frontier.len() <= out.steps.len());
        for p in &frontier {
            assert!(out.steps.iter().any(|s| s.candidate == p.candidate));
        }
    }

    #[test]
    fn frontier_sorted_by_area_with_latency_payback() {
        let frontier = pareto_frontier(&outcome());
        for pair in frontier.windows(2) {
            assert!(pair[0].area <= pair[1].area);
            // More silicon must buy back some latency dimension.
            assert!(
                pair[1].ttft < pair[0].ttft || pair[1].tbt < pair[0].tbt,
                "{} -> {}",
                pair[0].candidate,
                pair[1].candidate
            );
        }
    }
}
