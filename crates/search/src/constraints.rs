//! Search inputs: vendor constraints, user requirements, workload
//! (the "\<ADOR Input Data\>" box of Fig. 9).

use ador_model::ModelConfig;
use ador_perf::Deployment;
use ador_units::{Area, Bandwidth, Bytes, Frequency, Seconds};
use serde::{Deserialize, Serialize};

use crate::report::SearchError;

/// What the vendor can spend (Fig. 9: area budget, power budget,
/// hardware utilization — we model the silicon side).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VendorConstraints {
    /// Maximum die area.
    pub area_budget: Area,
    /// On-chip SRAM budget (local + global).
    pub sram_budget: Bytes,
    /// DRAM bandwidth of the chosen memory system.
    pub memory_bandwidth: Bandwidth,
    /// DRAM capacity.
    pub memory_capacity: Bytes,
    /// Largest P2P bandwidth the vendor will pay for.
    pub p2p_budget: Bandwidth,
    /// Device budget for multi-device serving.
    pub max_devices: usize,
    /// Target process node.
    pub process: ador_hw::ProcessNode,
    /// Core clock.
    pub frequency: Frequency,
}

impl VendorConstraints {
    /// A100-class constraints — the paper's §VI-A experimental setup
    /// ("ADOR proposed hardware configurations with similar specifications
    /// as the A100").
    pub fn a100_class() -> Self {
        Self {
            area_budget: Area::from_mm2(826.0),
            sram_budget: Bytes::from_mib(80),
            memory_bandwidth: Bandwidth::from_tbps(2.0),
            memory_capacity: Bytes::from_gib(80),
            p2p_budget: Bandwidth::from_gbps(128.0),
            max_devices: 16,
            process: ador_hw::ProcessNode::N7,
            frequency: Frequency::from_mhz(1500.0),
        }
    }
}

/// What the end-user demands (Fig. 9: TTFT, TBT, requests/s).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UserRequirements {
    /// Maximum time-to-first-token at the workload's prompt length.
    pub ttft_max: Seconds,
    /// Maximum time-between-tokens at the workload's batch size.
    pub tbt_max: Seconds,
    /// Sustained request rate target (used by serving-level validation).
    pub requests_per_sec: f64,
}

impl UserRequirements {
    /// A chatbot-grade SLA: first token within 100 ms, ≥40 tokens/s per
    /// stream, ~20 req/s per device — the regime of Figs. 15–16.
    pub fn chatbot() -> Self {
        Self {
            ttft_max: Seconds::from_millis(100.0),
            tbt_max: Seconds::from_millis(25.0),
            requests_per_sec: 20.0,
        }
    }

    /// A relaxed batch-serving SLA.
    pub fn batch_serving() -> Self {
        Self {
            ttft_max: Seconds::from_millis(500.0),
            tbt_max: Seconds::from_millis(50.0),
            requests_per_sec: 5.0,
        }
    }
}

/// The serving workload the design must carry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Target model.
    pub model: ModelConfig,
    /// Decode batch size at the operating point.
    pub batch: usize,
    /// Context / prompt length at the operating point.
    pub seq_len: usize,
}

impl Workload {
    /// Creates a workload.
    ///
    /// # Panics
    ///
    /// Panics if batch or sequence length is zero.
    pub fn new(model: ModelConfig, batch: usize, seq_len: usize) -> Self {
        assert!(
            batch > 0 && seq_len > 0,
            "workload needs batch > 0 and seq_len > 0"
        );
        Self {
            model,
            batch,
            seq_len,
        }
    }

    /// Average decode-step work per device, for the bandwidth law.
    pub fn decode_flops(&self) -> ador_units::FlopCount {
        ador_model::workload::StepSummary::compute(
            &self.model,
            ador_model::Phase::decode(self.batch, self.seq_len),
        )
        .flops
    }

    /// Plans the tensor-parallel deployment this workload needs on devices
    /// of the vendor's memory capacity.
    ///
    /// # Errors
    ///
    /// Returns [`SearchError::DeploymentPlanning`] when the model cannot be
    /// placed within the vendor's device budget.
    pub fn deployment(&self, vendor: &VendorConstraints) -> Result<Deployment, SearchError> {
        let kv = self.model.kv_cache_bytes(self.batch, 2 * self.seq_len);
        let plan = ador_parallel::ParallelPlan::for_memory(
            &self.model,
            kv,
            vendor.memory_capacity,
            vendor.max_devices,
        )
        .map_err(|e| SearchError::DeploymentPlanning(e.to_string()))?;
        Ok(Deployment::tensor_parallel(plan.devices()))
    }
}

/// The full search input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchInput {
    /// Vendor-side constraints.
    pub vendor: VendorConstraints,
    /// User-side requirements.
    pub user: UserRequirements,
    /// Target workload.
    pub workload: Workload,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ador_model::presets;

    #[test]
    fn a100_class_matches_datasheet() {
        let v = VendorConstraints::a100_class();
        assert_eq!(v.memory_capacity, Bytes::from_gib(80));
        assert!((v.memory_bandwidth.as_tbps() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn deployment_planning_scales_with_model() {
        let v = VendorConstraints::a100_class();
        let small = Workload::new(presets::llama3_8b(), 64, 1024);
        let large = Workload::new(presets::llama3_70b(), 64, 1024);
        assert_eq!(small.deployment(&v).unwrap().devices, 1);
        assert!(large.deployment(&v).unwrap().devices >= 2);
    }

    #[test]
    fn oversized_model_is_an_error() {
        let mut v = VendorConstraints::a100_class();
        v.max_devices = 1;
        let w = Workload::new(presets::llama3_70b(), 64, 1024);
        assert!(matches!(
            w.deployment(&v),
            Err(SearchError::DeploymentPlanning(_))
        ));
    }

    #[test]
    fn chatbot_sla_is_stricter_than_batch() {
        let chat = UserRequirements::chatbot();
        let batch = UserRequirements::batch_serving();
        assert!(chat.tbt_max < batch.tbt_max);
        assert!(chat.ttft_max < batch.ttft_max);
    }
}
