//! Datacenter-level co-exploration: hardware config × replica mix ×
//! router policy against a fleet SLO target.
//!
//! The paper's search (Fig. 9) stops at one chip. This module asks the
//! question the datacenter actually buys silicon for: given a traffic
//! mix, a fleet size and an attainment target, *which* chips in *what*
//! mix behind *which* router? The candidate space crosses:
//!
//! - **hardware**: a unified chip serving whole requests, and the
//!   specialized pair — compute-rich prefill chip, bandwidth-rich decode
//!   chip (conventionally `ador_baselines::{ador_table3,
//!   prefill_optimized, decode_optimized}`, see [`FleetChips`]);
//! - **replica mix**: every homogeneous fleet of `replicas` copies, and
//!   every disaggregated split `p` prefill + `replicas − p` decode over
//!   the given [`KvLink`];
//! - **router policy**: join-shortest-queue and least-KV-load on the
//!   front door, with least-KV-load steering the decode pool.
//!
//! Every candidate fields exactly `replicas` engines, so the comparison
//! is iso-count: a win is a *composition* win, not a capacity one. The
//! chooser prefers candidates that meet the attainment target and, among
//! those, the highest goodput; if nothing qualifies it falls back to the
//! highest attainment — the fleet analogue of the chip search's feedback
//! path.

use ador_cluster::{
    ClusterConfig, ClusterSim, FleetSpec, KvLink, ReplicaSpec, RouterPolicy, TenantMix,
};
use ador_hw::Architecture;
use ador_model::ModelConfig;
use ador_perf::Deployment;
use ador_serving::{SimConfig, SimError};
use serde::Serialize;

/// The chip palette the fleet search draws from.
#[derive(Debug, Clone)]
pub struct FleetChips {
    /// The balanced chip homogeneous aggregated fleets run on.
    pub unified: Architecture,
    /// The compute-rich chip for prefill pools.
    pub prefill: Architecture,
    /// The bandwidth-rich chip for decode pools.
    pub decode: Architecture,
}

impl FleetChips {
    /// The ADOR palette: the Table III design as the unified chip plus
    /// the two disaggregation specials.
    pub fn ador_defaults() -> Self {
        Self {
            unified: ador_baselines::ador_table3(),
            prefill: ador_baselines::prefill_optimized(),
            decode: ador_baselines::decode_optimized(),
        }
    }
}

/// One fleet-search problem instance.
#[derive(Debug, Clone)]
pub struct FleetSearchInput<'a> {
    /// The served model.
    pub model: &'a ModelConfig,
    /// The traffic mix every candidate serves.
    pub mix: &'a TenantMix,
    /// The chip palette.
    pub chips: FleetChips,
    /// Fleet size every candidate must field (iso-count comparison).
    pub replicas: usize,
    /// Per-replica engine knobs shared by all candidates.
    pub engine: SimConfig,
    /// The KV interconnect disaggregated candidates ship contexts over.
    pub link: KvLink,
    /// Requests per evaluation run.
    pub requests: usize,
    /// Workload seed (identical across candidates).
    pub seed: u64,
    /// The fleet SLO target: minimum request-weighted attainment.
    pub target_attainment: f64,
}

/// One evaluated fleet composition.
#[derive(Debug, Clone, Serialize)]
pub struct FleetCandidate {
    /// Human-readable composition, e.g. `"disagg 1xPrefill-Optimized + 3xDecode-Optimized"`.
    pub label: String,
    /// Front-door router policy.
    pub policy: RouterPolicy,
    /// Decode-pool policy (`None` for aggregated candidates).
    pub decode_policy: Option<RouterPolicy>,
    /// Prefill-pool size (equals `replicas` when aggregated).
    pub prefill_replicas: usize,
    /// Decode-pool size (equals `replicas` when aggregated).
    pub decode_replicas: usize,
    /// Whether the candidate disaggregates.
    pub disaggregated: bool,
    /// Request-weighted fleet SLO attainment.
    pub attainment: f64,
    /// Fleet goodput, completed tokens/s.
    pub goodput: f64,
    /// Fleet p95 TTFT in milliseconds (0 when nothing completed).
    pub ttft_p95_ms: f64,
    /// Fleet p95 mean-TBT in milliseconds (0 when nothing completed).
    pub tbt_p95_ms: f64,
    /// KV-context transfers the run shipped (0 when aggregated).
    pub kv_transfers: usize,
    /// Whether the candidate meets the attainment target.
    pub meets_target: bool,
}

/// The fleet search result: every candidate evaluated plus the chosen
/// composition and the best homogeneous runner-up it is judged against.
#[derive(Debug, Clone, Serialize)]
pub struct FleetSearchOutcome {
    /// All candidates, in the deterministic enumeration order.
    pub candidates: Vec<FleetCandidate>,
    /// Index of the chosen candidate in `candidates`.
    pub best: usize,
    /// Index of the best *homogeneous aggregated* candidate — the
    /// iso-count baseline a disaggregated winner's margin is quoted
    /// against.
    pub best_homogeneous: usize,
}

impl FleetSearchOutcome {
    /// The chosen composition.
    pub fn winner(&self) -> &FleetCandidate {
        &self.candidates[self.best]
    }

    /// The best homogeneous aggregated composition.
    pub fn homogeneous_baseline(&self) -> &FleetCandidate {
        &self.candidates[self.best_homogeneous]
    }
}

/// Runs the co-exploration: evaluates every composition in the crossed
/// candidate space on the same seeded workload and picks the winner.
///
/// Deterministic: candidates are enumerated in a fixed order, each run
/// reuses the input seed, and ties break toward the earlier candidate.
///
/// # Errors
///
/// Propagates the first engine construction or simulation error.
pub fn co_explore(input: &FleetSearchInput<'_>) -> Result<FleetSearchOutcome, SimError> {
    assert!(
        input.replicas >= 2,
        "a fleet search needs at least 2 replicas"
    );
    let mut candidates = Vec::new();

    // Homogeneous aggregated fleets: each chip × each front-door policy.
    let chips = [
        &input.chips.unified,
        &input.chips.prefill,
        &input.chips.decode,
    ];
    for arch in chips {
        for policy in [RouterPolicy::JoinShortestQueue, RouterPolicy::LeastKvLoad] {
            let spec = ReplicaSpec::new(arch.clone(), input.engine);
            let fleet = FleetSpec::homogeneous(&spec, input.replicas);
            let cfg = ClusterConfig::new(0, policy);
            let label = format!("{}x{} [{policy}]", input.replicas, arch.name);
            candidates.push(evaluate(
                input,
                &fleet,
                cfg,
                label,
                false,
                input.replicas,
                input.replicas,
            )?);
        }
    }

    // Disaggregated splits: p prefill-optimized + (n − p) decode-optimized,
    // JSQ at the front door, least-KV-load steering the decode pool.
    for prefill_count in 1..input.replicas {
        let decode_count = input.replicas - prefill_count;
        let prefill = ReplicaSpec::new(input.chips.prefill.clone(), input.engine);
        let decode = ReplicaSpec::new(input.chips.decode.clone(), input.engine);
        let fleet = FleetSpec::prefill_decode(&prefill, prefill_count, &decode, decode_count);
        let cfg = ClusterConfig::new(0, RouterPolicy::JoinShortestQueue)
            .with_decode_policy(RouterPolicy::LeastKvLoad)
            .with_disaggregation(input.link);
        let label = format!(
            "disagg {prefill_count}x{} + {decode_count}x{}",
            input.chips.prefill.name, input.chips.decode.name
        );
        candidates.push(evaluate(
            input,
            &fleet,
            cfg,
            label,
            true,
            prefill_count,
            decode_count,
        )?);
    }

    let best = pick(&candidates, |_| true);
    let best_homogeneous = pick(&candidates, |c| !c.disaggregated);
    Ok(FleetSearchOutcome {
        candidates,
        best,
        best_homogeneous,
    })
}

/// Chooses among candidates passing `eligible`: target-meeting candidates
/// by goodput, else everyone by attainment. Strict `>` keeps ties on the
/// earliest candidate.
fn pick(candidates: &[FleetCandidate], eligible: impl Fn(&FleetCandidate) -> bool) -> usize {
    let mut best: Option<usize> = None;
    for (i, c) in candidates.iter().enumerate().filter(|(_, c)| eligible(c)) {
        let better = match best {
            None => true,
            Some(b) => {
                let prev = &candidates[b];
                match (c.meets_target, prev.meets_target) {
                    (true, false) => true,
                    (false, true) => false,
                    (true, true) => c.goodput > prev.goodput,
                    (false, false) => c.attainment > prev.attainment,
                }
            }
        };
        if better {
            best = Some(i);
        }
    }
    best.expect("candidate set is never empty")
}

fn evaluate(
    input: &FleetSearchInput<'_>,
    fleet: &FleetSpec,
    cfg: ClusterConfig,
    label: String,
    disaggregated: bool,
    prefill_replicas: usize,
    decode_replicas: usize,
) -> Result<FleetCandidate, SimError> {
    let decode_policy = disaggregated.then_some(cfg.decode_policy);
    let policy = cfg.policy;
    let report = ClusterSim::new_fleet(fleet, input.model, Deployment::single_device(), cfg)?.run(
        input.mix,
        input.requests,
        input.seed,
    )?;
    let attainment = report.fleet_attainment();
    let goodput = report
        .fleet
        .as_ref()
        .map_or(0.0, |q| q.goodput_tokens_per_sec);
    let qos = report.fleet.as_ref();
    Ok(FleetCandidate {
        label,
        policy,
        decode_policy,
        prefill_replicas,
        decode_replicas,
        disaggregated,
        attainment,
        goodput,
        ttft_p95_ms: qos.map_or(0.0, |q| q.ttft.p95.get() * 1e3),
        tbt_p95_ms: qos.map_or(0.0, |q| q.tbt.p95.get() * 1e3),
        kv_transfers: report.kv_transfers,
        meets_target: attainment >= input.target_attainment,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ador_cluster::scenarios;
    use ador_model::presets;

    #[test]
    fn co_explore_is_deterministic_and_iso_count() {
        let model = presets::llama3_8b();
        let mix = scenarios::disagg_mix(12.0);
        let input = FleetSearchInput {
            model: &model,
            mix: &mix,
            chips: FleetChips::ador_defaults(),
            replicas: 2,
            engine: scenarios::disagg_engine(),
            link: scenarios::disagg_link(),
            requests: 60,
            seed: scenarios::DISAGG_SEED,
            target_attainment: 0.9,
        };
        let a = co_explore(&input).unwrap();
        let b = co_explore(&input).unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        // 3 chips × 2 policies homogeneous + 1 split.
        assert_eq!(a.candidates.len(), 7);
        assert!(a
            .candidates
            .iter()
            .all(|c| c.prefill_replicas + c.decode_replicas == 2
                || (!c.disaggregated && c.prefill_replicas == 2)));
        assert!(!a.homogeneous_baseline().disaggregated);
    }

    #[test]
    fn winner_prefers_target_then_goodput() {
        let mk = |meets, goodput, attainment| FleetCandidate {
            label: String::new(),
            policy: RouterPolicy::JoinShortestQueue,
            decode_policy: None,
            prefill_replicas: 2,
            decode_replicas: 2,
            disaggregated: false,
            attainment,
            goodput,
            ttft_p95_ms: 0.0,
            tbt_p95_ms: 0.0,
            kv_transfers: 0,
            meets_target: meets,
        };
        let c = vec![
            mk(false, 900.0, 0.97),
            mk(true, 400.0, 0.95),
            mk(true, 500.0, 0.92),
        ];
        assert_eq!(pick(&c, |_| true), 2, "meets-target max-goodput wins");
        let none = vec![mk(false, 100.0, 0.4), mk(false, 90.0, 0.6)];
        assert_eq!(pick(&none, |_| true), 1, "fallback is max attainment");
    }
}
