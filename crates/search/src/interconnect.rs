//! Step 2 of the search: NoC and P2P bandwidth solving (paper §V-C).

use ador_hw::Architecture;
use ador_noc::{minimum_overlap_bandwidth, OverlapModel};
use ador_perf::Deployment;
use ador_units::{Bandwidth, Bytes, Seconds};

use crate::Workload;

/// Solves the ring-NoC bandwidth: the larger of (a) the weight-prefetch
/// stream that keeps the systolic arrays double-buffered during prefill and
/// (b) the core-level all-gather of GEMV final sums during decode
/// (paper §V-C: "The final NoC bandwidth is the higher of these two
/// values").
pub fn solve_noc_bandwidth(arch: &Architecture, workload: &Workload) -> Bandwidth {
    let dtype = workload.model.dtype.bytes();

    // (a) Prefill: every SA instance needs its next weight tile on time.
    let prefetch = arch.sa.map_or(Bandwidth::from_bytes_per_sec(0.0), |sa| {
        let m = workload.seq_len.min(1024);
        sa.weight_prefetch_bandwidth(m, dtype, arch.frequency)
    });

    // (b) Decode: per-GEMV output slices all-gathered across cores within
    // the GEMV's own streaming window.
    let gemv_output = Bytes::new((workload.batch * workload.model.hidden) as u64 * dtype);
    let gemv_window = Seconds::new(
        workload.model.hidden as f64 * workload.model.hidden as f64 * dtype as f64
            / arch.dram.bandwidth.as_bytes_per_sec(),
    );
    let sync = minimum_overlap_bandwidth(gemv_output, gemv_window, OverlapModel::pipelined());

    round_up_bandwidth(prefetch.max(sync))
}

/// Solves the P2P bandwidth: the minimum link that overlaps one layer
/// block's all-gather under its compute window, clamped to standard link
/// classes (paper §V-C: "approximately 32 GB/s, achievable with
/// PCIe-4 ×16, is sufficient").
pub fn solve_p2p_bandwidth(
    arch: &Architecture,
    workload: &Workload,
    deployment: Deployment,
) -> Bandwidth {
    if deployment.devices <= 1 {
        // Single-device serving still ships a modest link for scale-out.
        return Bandwidth::from_gbps(16.0);
    }
    let dtype = workload.model.dtype.bytes();
    let msg = Bytes::new((workload.batch * workload.model.hidden) as u64 * dtype);
    let cost = deployment.strategy.block_cost(deployment.devices, msg);
    // Compute window: one block ≈ half a layer's weight stream on this
    // device's share of the model.
    let layer_bytes = workload.model.streamed_layer_bytes(workload.batch);
    let window = Seconds::new(
        layer_bytes.get() as f64
            / (2.0 * deployment.devices as f64)
            / arch.dram.bandwidth.as_bytes_per_sec(),
    );
    let need = minimum_overlap_bandwidth(cost.bytes_per_device, window, OverlapModel::pipelined());
    round_up_link(need)
}

/// Rounds an on-chip requirement up to a power-of-two GB/s lane count.
fn round_up_bandwidth(bw: Bandwidth) -> Bandwidth {
    let gbps = bw.as_gbps().max(32.0);
    Bandwidth::from_gbps((gbps.ceil() as u64).next_power_of_two() as f64)
}

/// Rounds a P2P requirement up to the nearest standard link class.
fn round_up_link(bw: Bandwidth) -> Bandwidth {
    const CLASSES: [f64; 6] = [16.0, 32.0, 64.0, 128.0, 256.0, 600.0];
    let need = bw.as_gbps();
    for class in CLASSES {
        if class >= need {
            return Bandwidth::from_gbps(class);
        }
    }
    Bandwidth::from_gbps(900.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ador_model::presets;

    fn arch() -> Architecture {
        ador_baselines::ador_table3()
    }

    #[test]
    fn noc_grows_with_systolic_array() {
        let w = Workload::new(presets::llama3_8b(), 128, 1024);
        let small = {
            let mut a = arch();
            a.sa = Some(ador_hw::SystolicArray::square(32));
            solve_noc_bandwidth(&a, &w)
        };
        let large = {
            let mut a = arch();
            a.sa = Some(ador_hw::SystolicArray::square(128));
            solve_noc_bandwidth(&a, &w)
        };
        // §V-C: "the bandwidth required to hide weight pre-fetching
        // increases with the size of the systolic array".
        assert!(large >= small, "{large} vs {small}");
    }

    #[test]
    fn single_device_needs_only_a_stub_link() {
        let w = Workload::new(presets::llama3_8b(), 128, 1024);
        let bw = solve_p2p_bandwidth(&arch(), &w, Deployment::single_device());
        assert!(bw.as_gbps() <= 16.0);
    }

    #[test]
    fn paper_claim_modest_p2p_suffices() {
        // 8-way LLaMA3-70B decode overlaps on a PCIe-class link, not
        // NVLink (§V-C / Table III's 64 GB/s).
        let w = Workload::new(presets::llama3_70b(), 128, 1024);
        let bw = solve_p2p_bandwidth(&arch(), &w, Deployment::tensor_parallel(8));
        assert!(bw.as_gbps() <= 128.0, "{bw}");
    }

    #[test]
    fn link_classes_round_up() {
        assert_eq!(round_up_link(Bandwidth::from_gbps(33.0)).as_gbps(), 64.0);
        assert_eq!(round_up_link(Bandwidth::from_gbps(700.0)).as_gbps(), 900.0);
    }
}
