//! The ADOR architecture search (paper §V, Fig. 9).
//!
//! Given **vendor constraints** (area, SRAM, memory bandwidth/capacity,
//! process, clock) and **end-user requirements** (TTFT, TBT, request rate)
//! for a target **workload** (model, batch, sequence length), the search:
//!
//! 1. sizes the MAC tree from the bandwidth-matching formula and a lane
//!    sweep over the model's attention variant (§V-A, Fig. 11b), then
//!    enumerates systolic-array configurations in multiples of 32 (§V-A,
//!    Fig. 11a) and sizes local/global SRAM from the activation simulator
//!    (§V-B, Fig. 12);
//! 2. solves the minimum NoC and P2P bandwidths that keep communication
//!    overlapped (§V-C, Fig. 13);
//! 3. evaluates every candidate with the performance model and picks the
//!    **smallest-area design that meets the requirements** — vendors pay
//!    for silicon, users for latency (Fig. 1);
//! 4. if nothing qualifies, runs the paper's feedback path: report the best
//!    effort along with which requirement failed and what it would take.
//!
//! Beyond the single chip, [`co_explore`] lifts the search to the
//! datacenter: hardware config × replica mix × router policy against a
//! fleet SLO target, judging prefill/decode-disaggregated heterogeneous
//! mixes against iso-count homogeneous fleets on real multi-tenant
//! traffic (see `crates/cluster`).
//!
//! # Examples
//!
//! ```
//! use ador_search::{SearchInput, UserRequirements, VendorConstraints, Workload};
//! use ador_model::presets;
//!
//! let input = SearchInput {
//!     vendor: VendorConstraints::a100_class(),
//!     user: UserRequirements::chatbot(),
//!     workload: Workload::new(presets::llama3_8b(), 128, 1024),
//! };
//! let outcome = ador_search::search(&input)?;
//! assert!(outcome.satisfied);
//! assert!(outcome.architecture.is_hda());
//! # Ok::<(), ador_search::SearchError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod constraints;
mod fleet;
mod interconnect;
mod pareto;
mod report;
mod sizing;

pub use constraints::{SearchInput, UserRequirements, VendorConstraints, Workload};
pub use fleet::{co_explore, FleetCandidate, FleetChips, FleetSearchInput, FleetSearchOutcome};
pub use interconnect::{solve_noc_bandwidth, solve_p2p_bandwidth};
pub use pareto::{pareto_frontier, ParetoPoint};
pub use report::{SearchError, SearchOutcome, SearchStep};
pub use sizing::{mt_candidates, sa_candidates, size_memories};

use ador_hw::{AreaModel, MacTree, SystolicArray};
use ador_perf::Evaluator;
use ador_units::Seconds;

/// Runs the full Fig. 9 search loop.
///
/// # Errors
///
/// Returns [`SearchError::NoFeasibleCandidate`] when not a single candidate
/// fits the vendor's area/memory budget at all (distinct from "fits but
/// misses QoS", which yields `satisfied = false` plus the feedback notes).
pub fn search(input: &SearchInput) -> Result<SearchOutcome, SearchError> {
    let vendor = &input.vendor;
    let user = &input.user;
    let workload = &input.workload;
    let area_model = AreaModel::default();

    let deployment = workload.deployment(vendor)?;
    let mut steps: Vec<SearchStep> = Vec::new();
    let mut best: Option<(f64, SearchOutcome)> = None; // keyed by area
    let mut best_effort: Option<(f64, SearchOutcome)> = None; // keyed by QoS score

    let mts = mt_candidates(vendor, workload);
    for mt in &mts {
        for sa in sa_candidates() {
            for cores in [8usize, 16, 32, 64, 128] {
                let Some((local, global)) = size_memories(vendor, workload, cores) else {
                    continue;
                };
                let candidate = build_candidate(vendor, *mt, sa, cores, local, global);
                let breakdown = area_model.estimate(&candidate);
                let area = breakdown.total();
                if area > vendor.area_budget {
                    continue;
                }
                // Step 2: interconnect floors for this candidate.
                let mut candidate = candidate;
                candidate.noc_bandwidth = solve_noc_bandwidth(&candidate, workload);
                candidate.p2p_bandwidth = solve_p2p_bandwidth(&candidate, workload, deployment);
                let breakdown = area_model.estimate(&candidate);
                let area = breakdown.total();
                if area > vendor.area_budget {
                    continue;
                }

                // Step 3: evaluate QoS at the operating point.
                let Ok(eval) = Evaluator::new(&candidate, &workload.model, deployment) else {
                    continue;
                };
                let Ok(ttft) = eval.ttft(1, workload.seq_len) else {
                    continue;
                };
                let Ok(tbt) = eval.decode_interval(workload.batch, workload.seq_len) else {
                    continue;
                };

                let ttft_score = ttft.get() / user.ttft_max.get();
                let tbt_score = tbt.get() / user.tbt_max.get();
                let qos_score = ttft_score.max(tbt_score);
                let satisfied = qos_score <= 1.0;

                steps.push(SearchStep {
                    candidate: candidate.name.clone(),
                    area,
                    ttft,
                    tbt,
                    satisfied,
                });

                let outcome = SearchOutcome {
                    architecture: candidate,
                    area: breakdown,
                    deployment,
                    ttft,
                    tbt,
                    satisfied,
                    qos_margin: 1.0 - qos_score,
                    steps: Vec::new(),
                    notes: Vec::new(),
                };
                if satisfied {
                    let key = area.as_mm2();
                    if best.as_ref().is_none_or(|(a, _)| key < *a) {
                        best = Some((key, outcome));
                    }
                } else {
                    let key = qos_score;
                    if best_effort.as_ref().is_none_or(|(s, _)| key < *s) {
                        best_effort = Some((key, outcome));
                    }
                }
            }
        }
    }

    // Step 4: finalize, or run the feedback path.
    match (best, best_effort) {
        (Some((_, mut outcome)), _) => {
            outcome.steps = steps;
            Ok(outcome)
        }
        (None, Some((_, mut outcome))) => {
            outcome.notes = feedback_notes(&outcome, user);
            outcome.steps = steps;
            Ok(outcome)
        }
        (None, None) => Err(SearchError::NoFeasibleCandidate {
            area_budget: vendor.area_budget,
            model: workload.model.name.clone(),
        }),
    }
}

fn build_candidate(
    vendor: &VendorConstraints,
    mt: MacTree,
    sa: SystolicArray,
    cores: usize,
    local: ador_units::Bytes,
    global: ador_units::Bytes,
) -> ador_hw::Architecture {
    ador_hw::Architecture::builder(format!(
        "ADOR sa{}x{} mt{}x{} c{}",
        sa.rows(),
        sa.cols(),
        mt.size(),
        mt.lanes(),
        cores
    ))
    .cores(cores)
    .systolic_array(sa)
    .mac_tree(mt)
    .local_memory(local)
    .global_memory(global)
    .dram(ador_hw::memory::DramSpec::hbm2e(
        vendor.memory_capacity,
        vendor.memory_bandwidth,
    ))
    .frequency(vendor.frequency)
    .process(vendor.process)
    .build()
}

/// The paper's final-iteration behaviour: when requirements stay unmet,
/// "the final architecture is proposed along with the additional hardware
/// specifications needed".
fn feedback_notes(outcome: &SearchOutcome, user: &UserRequirements) -> Vec<String> {
    let mut notes = Vec::new();
    if outcome.ttft > user.ttft_max {
        let factor = outcome.ttft.get() / user.ttft_max.get();
        notes.push(format!(
            "TTFT misses the SLA by {factor:.2}x: allocate more systolic-array area \
             (or raise the area budget by ~{:.0}%)",
            (factor - 1.0) * 100.0
        ));
    }
    if outcome.tbt > user.tbt_max {
        let factor = outcome.tbt.get() / user.tbt_max.get();
        notes.push(format!(
            "TBT misses the SLA by {factor:.2}x: memory bandwidth is the binding \
             resource — provision ~{factor:.2}x the DRAM bandwidth or shard wider"
        ));
    }
    notes
}

/// Convenience wrapper: search and also verify the result against the
/// winner's own predicted QoS, returning (outcome, headline TTFT, TBT).
///
/// # Errors
///
/// Propagates [`search`] errors.
pub fn search_with_headline(
    input: &SearchInput,
) -> Result<(SearchOutcome, Seconds, Seconds), SearchError> {
    let outcome = search(input)?;
    let (ttft, tbt) = (outcome.ttft, outcome.tbt);
    Ok((outcome, ttft, tbt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ador_model::presets;
    use ador_perf::Evaluator;

    fn a100_class_input() -> SearchInput {
        SearchInput {
            vendor: VendorConstraints::a100_class(),
            user: UserRequirements::chatbot(),
            workload: Workload::new(presets::llama3_8b(), 128, 1024),
        }
    }

    #[test]
    fn search_reproduces_table3_shape() {
        // Under A100-class constraints the paper's search lands on a
        // 64x64-SA HDA with tens of cores and a die around 516 mm².
        let outcome = search(&a100_class_input()).unwrap();
        assert!(outcome.satisfied, "{:?}", outcome.notes);
        let arch = &outcome.architecture;
        assert!(arch.is_hda());
        let sa = arch.sa.unwrap();
        assert!(
            (32..=128).contains(&sa.rows()),
            "SA size {} outside the paper's sweep",
            sa.rows()
        );
        let area = outcome.area.total().as_mm2();
        assert!((350.0..=826.0).contains(&area), "die {area:.0} mm2");
    }

    #[test]
    fn proposed_design_beats_a100_qos() {
        let input = a100_class_input();
        let outcome = search(&input).unwrap();
        let a100 = ador_baselines::a100();
        let model = &input.workload.model;
        let gpu = Evaluator::new(&a100, model, outcome.deployment).unwrap();
        let gpu_tbt = gpu
            .decode_interval(input.workload.batch, input.workload.seq_len)
            .unwrap();
        assert!(
            outcome.tbt < gpu_tbt,
            "search result {} should beat the A100's {}",
            outcome.tbt,
            gpu_tbt
        );
    }

    #[test]
    fn tighter_area_budget_shrinks_the_die() {
        let mut input = a100_class_input();
        let spacious = search(&input).unwrap();
        input.vendor.area_budget =
            ador_units::Area::from_mm2(spacious.area.total().as_mm2() * 0.85);
        // Relax QoS so a smaller design can still qualify.
        input.user.tbt_max = Seconds::from_millis(60.0);
        input.user.ttft_max = Seconds::from_millis(200.0);
        let tight = search(&input).unwrap();
        assert!(tight.area.total() <= spacious.area.total());
    }

    #[test]
    fn impossible_sla_returns_feedback() {
        let mut input = a100_class_input();
        input.user.tbt_max = Seconds::from_micros(1.0);
        let outcome = search(&input).unwrap();
        assert!(!outcome.satisfied);
        assert!(!outcome.notes.is_empty());
        assert!(
            outcome.notes.iter().any(|n| n.contains("TBT")),
            "{:?}",
            outcome.notes
        );
    }

    #[test]
    fn search_logs_candidate_steps() {
        let outcome = search(&a100_class_input()).unwrap();
        assert!(
            outcome.steps.len() > 10,
            "expected a real sweep, got {}",
            outcome.steps.len()
        );
    }

    #[test]
    fn multi_device_workload_plans_deployment() {
        let input = SearchInput {
            vendor: VendorConstraints::a100_class(),
            user: UserRequirements::chatbot(),
            workload: Workload::new(presets::llama3_70b(), 128, 1024),
        };
        let outcome = search(&input).unwrap();
        assert!(
            outcome.deployment.devices >= 2,
            "{}",
            outcome.deployment.devices
        );
    }
}
